//! Async synchronization primitives for simulated tasks.
//!
//! All primitives are FIFO: waiters are served in arrival order, which keeps
//! simulations deterministic and models the queue-based fairness of the lock
//! and latch managers in Shore-MT-style engines.

use std::cell::{Cell, Ref, RefCell, RefMut};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// SimMutex
// ---------------------------------------------------------------------------

/// An async mutex with strict FIFO handoff.
///
/// Unlike an OS mutex, release hands the lock directly to the oldest waiter,
/// so convoy behavior under contention is modeled faithfully.
pub struct SimMutex<T> {
    inner: Rc<MutexInner<T>>,
}

impl<T> Clone for SimMutex<T> {
    fn clone(&self) -> Self {
        SimMutex {
            inner: Rc::clone(&self.inner),
        }
    }
}

struct MutexInner<T> {
    state: RefCell<MutexState>,
    value: RefCell<T>,
}

struct MutexState {
    locked: bool,
    next_ticket: u64,
    /// Ticket of the waiter the lock has been handed to (but which has not
    /// yet resumed).
    handoff: Option<u64>,
    queue: VecDeque<(u64, Waker)>,
    /// Total number of lock acquisitions that had to wait (contention stat).
    contended: u64,
    acquisitions: u64,
}

impl<T> SimMutex<T> {
    pub fn new(value: T) -> Self {
        SimMutex {
            inner: Rc::new(MutexInner {
                state: RefCell::new(MutexState {
                    locked: false,
                    next_ticket: 0,
                    handoff: None,
                    queue: VecDeque::new(),
                    contended: 0,
                    acquisitions: 0,
                }),
                value: RefCell::new(value),
            }),
        }
    }

    /// Acquire the lock, suspending in FIFO order if held.
    pub fn lock(&self) -> MutexLockFuture<T> {
        MutexLockFuture {
            mutex: self.clone(),
            ticket: None,
        }
    }

    /// Acquire only if free right now.
    pub fn try_lock(&self) -> Option<SimMutexGuard<T>> {
        let mut st = self.inner.state.borrow_mut();
        if !st.locked {
            st.locked = true;
            st.acquisitions += 1;
            drop(st);
            Some(SimMutexGuard {
                mutex: self.clone(),
            })
        } else {
            None
        }
    }

    /// Number of tasks currently queued for the lock.
    pub fn queue_len(&self) -> usize {
        self.inner.state.borrow().queue.len()
    }

    /// `(total acquisitions, acquisitions that waited)`.
    pub fn contention_stats(&self) -> (u64, u64) {
        let st = self.inner.state.borrow();
        (st.acquisitions, st.contended)
    }
}

/// Future returned by [`SimMutex::lock`].
pub struct MutexLockFuture<T> {
    mutex: SimMutex<T>,
    ticket: Option<u64>,
}

impl<T> Future for MutexLockFuture<T> {
    type Output = SimMutexGuard<T>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mutex = self.mutex.clone();
        let mut st = mutex.inner.state.borrow_mut();
        match self.ticket {
            None => {
                if !st.locked {
                    st.locked = true;
                    st.acquisitions += 1;
                    drop(st);
                    Poll::Ready(SimMutexGuard { mutex })
                } else {
                    let t = st.next_ticket;
                    st.next_ticket += 1;
                    st.queue.push_back((t, cx.waker().clone()));
                    st.contended += 1;
                    st.acquisitions += 1;
                    self.ticket = Some(t);
                    Poll::Pending
                }
            }
            Some(t) => {
                if st.handoff == Some(t) {
                    st.handoff = None;
                    drop(st);
                    Poll::Ready(SimMutexGuard { mutex })
                } else {
                    // Refresh the stored waker in case the task was moved.
                    if let Some(entry) = st.queue.iter_mut().find(|(tk, _)| *tk == t) {
                        entry.1 = cx.waker().clone();
                    }
                    Poll::Pending
                }
            }
        }
    }
}

/// RAII guard for [`SimMutex`]; unlocks (with FIFO handoff) on drop.
pub struct SimMutexGuard<T> {
    mutex: SimMutex<T>,
}

impl<T> SimMutexGuard<T> {
    /// Borrow the protected value mutably. The borrow must not be held across
    /// an `.await` that other borrowers could interleave with — in practice,
    /// borrow, mutate, drop, then await.
    pub fn get(&self) -> RefMut<'_, T> {
        self.mutex.inner.value.borrow_mut()
    }

    pub fn get_ref(&self) -> Ref<'_, T> {
        self.mutex.inner.value.borrow()
    }
}

impl<T> Drop for SimMutexGuard<T> {
    fn drop(&mut self) {
        let mut st = self.mutex.inner.state.borrow_mut();
        debug_assert!(st.locked);
        if let Some((t, w)) = st.queue.pop_front() {
            st.handoff = Some(t);
            w.wake();
        } else {
            st.locked = false;
        }
    }
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

/// A condition-variable-like wakeup primitive with FIFO waiters.
///
/// `notify_one`/`notify_all` wake tasks currently suspended in
/// [`Notify::notified`]. There is no stored permit: within the
/// single-threaded executor, checking a condition and then awaiting
/// `notified()` is atomic (no interleaving before the first poll), so the
/// classic lost-wakeup race cannot occur as long as callers re-check their
/// condition in a loop.
#[derive(Clone)]
pub struct Notify {
    inner: Rc<RefCell<NotifyState>>,
}

struct NotifyState {
    next_ticket: u64,
    waiting: VecDeque<(u64, Waker)>,
    fired: Vec<u64>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    pub fn new() -> Self {
        Notify {
            inner: Rc::new(RefCell::new(NotifyState {
                next_ticket: 0,
                waiting: VecDeque::new(),
                fired: Vec::new(),
            })),
        }
    }

    /// Wake the oldest waiter, if any.
    pub fn notify_one(&self) {
        let mut st = self.inner.borrow_mut();
        if let Some((t, w)) = st.waiting.pop_front() {
            st.fired.push(t);
            w.wake();
        }
    }

    /// Wake every current waiter.
    pub fn notify_all(&self) {
        let mut st = self.inner.borrow_mut();
        let drained: Vec<_> = st.waiting.drain(..).collect();
        for (t, w) in drained {
            st.fired.push(t);
            w.wake();
        }
    }

    pub fn waiters(&self) -> usize {
        self.inner.borrow().waiting.len()
    }

    /// Wait until notified (registers on first poll).
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            ticket: None,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    ticket: Option<u64>,
}

impl Future for Notified {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.notify.inner.borrow_mut();
        match self.ticket {
            None => {
                let t = st.next_ticket;
                st.next_ticket += 1;
                st.waiting.push_back((t, cx.waker().clone()));
                drop(st);
                self.ticket = Some(t);
                Poll::Pending
            }
            Some(t) => {
                if let Some(pos) = st.fired.iter().position(|&f| f == t) {
                    st.fired.swap_remove(pos);
                    Poll::Ready(())
                } else {
                    if let Some(entry) = st.waiting.iter_mut().find(|(tk, _)| *tk == t) {
                        entry.1 = cx.waker().clone();
                    }
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if let Some(t) = self.ticket {
            let mut st = self.notify.inner.borrow_mut();
            if let Some(pos) = st.waiting.iter().position(|(tk, _)| *tk == t) {
                st.waiting.remove(pos);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

/// A one-shot broadcast flag: once [`Event::set`] is called, all current and
/// future [`Event::wait`]s complete immediately. Used for commit-durable
/// notifications and 2PC decision broadcast.
#[derive(Clone)]
pub struct Event {
    inner: Rc<RefCell<EventState>>,
}

struct EventState {
    fired: bool,
    waiters: Vec<Waker>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    pub fn new() -> Self {
        Event {
            inner: Rc::new(RefCell::new(EventState {
                fired: false,
                waiters: Vec::new(),
            })),
        }
    }

    pub fn set(&self) {
        let mut st = self.inner.borrow_mut();
        st.fired = true;
        for w in st.waiters.drain(..) {
            w.wake();
        }
    }

    pub fn is_set(&self) -> bool {
        self.inner.borrow().fired
    }

    pub fn wait(&self) -> EventWait {
        EventWait {
            event: self.clone(),
        }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait {
    event: Event,
}

impl Future for EventWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.event.inner.borrow_mut();
        if st.fired {
            Poll::Ready(())
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

/// Counting semaphore with FIFO grants.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<SemInner>,
}

struct SemInner {
    permits: Cell<u64>,
    state: RefCell<SemState>,
}

struct SemState {
    next_ticket: u64,
    queue: VecDeque<(u64, u64, Waker)>, // (ticket, want, waker)
    granted: Vec<u64>,
}

impl Semaphore {
    pub fn new(permits: u64) -> Self {
        Semaphore {
            inner: Rc::new(SemInner {
                permits: Cell::new(permits),
                state: RefCell::new(SemState {
                    next_ticket: 0,
                    queue: VecDeque::new(),
                    granted: Vec::new(),
                }),
            }),
        }
    }

    pub fn available(&self) -> u64 {
        self.inner.permits.get()
    }

    /// Acquire `n` permits, waiting FIFO.
    pub fn acquire(&self, n: u64) -> SemAcquire {
        SemAcquire {
            sem: self.clone(),
            want: n,
            ticket: None,
        }
    }

    /// Return `n` permits and grant queued waiters in order.
    pub fn release(&self, n: u64) {
        self.inner.permits.set(self.inner.permits.get() + n);
        let mut st = self.inner.state.borrow_mut();
        // Grant strictly in FIFO order; stop at the first waiter we cannot
        // satisfy (no barging past the head of the queue).
        while let Some(&(t, want, _)) = st.queue.front() {
            if self.inner.permits.get() >= want {
                self.inner.permits.set(self.inner.permits.get() - want);
                let (_, _, w) = st.queue.pop_front().unwrap();
                st.granted.push(t);
                w.wake();
            } else {
                break;
            }
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct SemAcquire {
    sem: Semaphore,
    want: u64,
    ticket: Option<u64>,
}

impl Future for SemAcquire {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let sem = self.sem.clone();
        let mut st = sem.inner.state.borrow_mut();
        match self.ticket {
            None => {
                if st.queue.is_empty() && sem.inner.permits.get() >= self.want {
                    sem.inner.permits.set(sem.inner.permits.get() - self.want);
                    Poll::Ready(())
                } else {
                    let t = st.next_ticket;
                    st.next_ticket += 1;
                    let want = self.want;
                    st.queue.push_back((t, want, cx.waker().clone()));
                    self.ticket = Some(t);
                    Poll::Pending
                }
            }
            Some(t) => {
                if let Some(pos) = st.granted.iter().position(|&g| g == t) {
                    st.granted.swap_remove(pos);
                    Poll::Ready(())
                } else {
                    if let Some(entry) = st.queue.iter_mut().find(|(tk, _, _)| *tk == t) {
                        entry.2 = cx.waker().clone();
                    }
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;
    use std::rc::Rc;

    #[test]
    fn mutex_provides_mutual_exclusion_and_fifo() {
        let sim = Sim::new();
        let m = SimMutex::new(Vec::<u32>::new());
        for i in 0..5u32 {
            let s = sim.clone();
            let m = m.clone();
            sim.spawn(async move {
                // Stagger arrival so the queue order is well defined.
                s.sleep(10 * (i as u64 + 1)).await;
                let g = m.lock().await;
                s.sleep(1_000).await; // hold across virtual time
                g.get().push(i);
            });
        }
        sim.run();
        let (acq, contended) = m.contention_stats();
        assert_eq!(acq, 5);
        assert_eq!(contended, 4, "all but the first acquisition waited");
        let g = m.try_lock().unwrap();
        assert_eq!(*g.get_ref(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mutex_try_lock() {
        let m = SimMutex::new(7u32);
        let g = m.try_lock().unwrap();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn notify_wakes_in_fifo_order() {
        let sim = Sim::new();
        let n = Notify::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let s = sim.clone();
            let n = n.clone();
            let l = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(i as u64 + 1).await;
                n.notified().await;
                l.borrow_mut().push(i);
            });
        }
        let s = sim.clone();
        let n2 = n.clone();
        sim.spawn(async move {
            s.sleep(100).await;
            n2.notify_one();
            s.sleep(100).await;
            n2.notify_all();
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn dropped_waiter_is_removed() {
        let sim = Sim::new();
        let n = Notify::new();
        {
            let fut = n.notified();
            drop(fut); // never polled: no ticket, nothing to remove
        }
        assert_eq!(n.waiters(), 0);
        // A polled-then-dropped waiter must unregister.
        let n2 = n.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let w = n2.notified();
            // Race the waiter against a timeout; timeout wins, future drops.
            futures_select_timeout(&s, w, 50).await;
        });
        sim.run();
        assert_eq!(n.waiters(), 0);
    }

    /// Minimal select: waits on `fut` but gives up after `d` picoseconds.
    async fn futures_select_timeout(sim: &Sim, fut: Notified, d: u64) {
        use std::future::Future;
        use std::pin::pin;
        use std::task::Poll;
        let mut fut = pin!(fut);
        let mut sleep = pin!(sim.sleep(d));
        std::future::poll_fn(move |cx| {
            if fut.as_mut().poll(cx).is_ready() || sleep.as_mut().poll(cx).is_ready() {
                Poll::Ready(())
            } else {
                Poll::Pending
            }
        })
        .await;
    }

    #[test]
    fn event_broadcasts_to_current_and_future_waiters() {
        let sim = Sim::new();
        let e = Event::new();
        let count = Rc::new(Cell::new(0));
        for _ in 0..3 {
            let e = e.clone();
            let c = Rc::clone(&count);
            sim.spawn(async move {
                e.wait().await;
                c.set(c.get() + 1);
            });
        }
        let e2 = e.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(10).await;
            e2.set();
        });
        sim.run();
        assert_eq!(count.get(), 3);
        // Late waiter completes immediately.
        let c = Rc::clone(&count);
        let e3 = e.clone();
        sim.spawn(async move {
            e3.wait().await;
            c.set(c.get() + 1);
        });
        sim.run();
        assert_eq!(count.get(), 4);
    }

    #[test]
    fn semaphore_fifo_without_barging() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let log = Rc::new(RefCell::new(Vec::new()));
        // Task 0 wants both permits but arrives first; a later small request
        // must not overtake it.
        for (i, want) in [(0u32, 2u64), (1, 1)] {
            let s = sim.clone();
            let sem = sem.clone();
            let l = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(i as u64 + 1).await;
                sem.acquire(want).await;
                l.borrow_mut().push(i);
                s.sleep(100).await;
                sem.release(want);
            });
        }
        // Hold one permit initially so task 0 must queue.
        let sem2 = sem.clone();
        let s = sim.clone();
        sim.spawn(async move {
            sem2.acquire(1).await;
            s.sleep(50).await;
            sem2.release(1);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1]);
    }
}
