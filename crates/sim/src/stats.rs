//! Streaming statistics used by the benchmark harness.

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n-1 denominator).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Coefficient of variation as a percentage, the paper's Table 1
    /// "Std. dev. (%)" column.
    pub fn cv_percent(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            100.0 * self.std_dev() / self.mean().abs()
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let mut s = RunningStats::new();
    for &x in xs {
        s.push(x);
    }
    (s.mean(), s.std_dev())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_textbook_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev() - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 11) as f64).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn cv_percent() {
        let mut s = RunningStats::new();
        s.push(90.0);
        s.push(110.0);
        // mean 100, sample std ~14.14
        assert!((s.cv_percent() - 14.142135).abs() < 1e-3);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        let mut s2 = RunningStats::new();
        s2.push(5.0);
        assert_eq!(s2.mean(), 5.0);
        assert_eq!(s2.std_dev(), 0.0);
    }
}
