//! Deterministic discrete-event simulation (DES) kernel.
//!
//! The *OLTP on Hardware Islands* paper measures NUMA effects on real 4- and
//! 8-socket Xeons. This reproduction executes the same transaction logic
//! under a **virtual clock**: worker threads become async tasks, and every
//! hardware interaction (memory access, lock handoff, message, disk write)
//! advances virtual time by a calibrated amount instead of wall time.
//!
//! The kernel is intentionally tiny and dependency-free:
//!
//! * [`Sim`] — a single-threaded executor with a binary-heap timer wheel.
//!   Events with equal timestamps fire in registration order, so a run is a
//!   pure function of its inputs (and any externally-seeded RNG).
//! * [`sync`] — async primitives (FIFO [`sync::SimMutex`], [`sync::Notify`],
//!   [`sync::Semaphore`]) whose wait queues suspend tasks in virtual time.
//! * [`chan`] — message channels with per-message delivery latency, the
//!   substrate for the simulated IPC layer.
//! * [`disk`] — a serial-service-queue disk model (log device and the
//!   RAID-0 data disks of the paper's Section 7.4).
//! * [`stats`] — Welford mean/variance accumulators used by every benchmark.
//!
//! Time is `u64` picoseconds ([`SimTime`]); experiments run milliseconds to
//! seconds of virtual time, far below overflow.

#![forbid(unsafe_code)]

pub mod chan;
pub mod disk;
pub mod executor;
pub mod stats;
pub mod sync;
pub mod time;

pub use executor::{JoinHandle, Sim};
pub use time::SimTime;

/// Picoseconds per nanosecond, exposed for cost tables.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;
