//! A serial-service-queue disk model.
//!
//! Two uses in the reproduction, matching the paper's Section 5 setup:
//! a **log device** absorbing group-commit flushes, and the **data disks**
//! (two 10 kRPM SAS HDDs in RAID-0) that serve buffer-pool misses once the
//! working set outgrows memory (Section 7.4 / Figure 14).
//!
//! Requests are serviced one at a time in arrival order; a request arriving
//! while the device is busy queues behind the in-flight one. Service time is
//! `access_ps + bytes * per_byte_ps`.

use std::cell::Cell;
use std::rc::Rc;

use crate::{Sim, SimTime};

/// Disk service parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Fixed positioning/controller cost per request, picoseconds.
    pub access_ps: u64,
    /// Transfer cost per byte, picoseconds.
    pub per_byte_ps: u64,
}

impl DiskParams {
    /// A 10 kRPM SAS HDD serving random 8 KB pages: ~3 ms positioning
    /// (seek + half-rotation) and ~100 MB/s media rate.
    pub fn hdd_random() -> Self {
        DiskParams {
            access_ps: 3_000_000_000,
            per_byte_ps: 10_000,
        }
    }

    /// The same HDD absorbing sequential log appends with its track buffer:
    /// ~250 µs effective positioning, same media rate.
    pub fn hdd_log() -> Self {
        DiskParams {
            access_ps: 250_000_000,
            per_byte_ps: 10_000,
        }
    }

    /// A memory-backed device (the paper's main experiments put data and log
    /// on memory-mapped disks). Small fixed cost for the kernel crossing.
    pub fn memory_mapped() -> Self {
        DiskParams {
            access_ps: 2_000_000, // 2 us
            per_byte_ps: 100,     // ~10 GB/s
        }
    }
}

/// One disk. Clone handles share the device queue.
#[derive(Clone)]
pub struct Disk {
    inner: Rc<DiskInner>,
}

struct DiskInner {
    sim: Sim,
    params: DiskParams,
    next_free: Cell<u64>,
    requests: Cell<u64>,
    busy_ps: Cell<u64>,
}

impl Disk {
    pub fn new(sim: &Sim, params: DiskParams) -> Self {
        Disk {
            inner: Rc::new(DiskInner {
                sim: sim.clone(),
                params,
                next_free: Cell::new(0),
                requests: Cell::new(0),
                busy_ps: Cell::new(0),
            }),
        }
    }

    /// Perform an I/O of `bytes`; resolves when the transfer completes.
    pub async fn access(&self, bytes: u64) {
        let d = &self.inner;
        let now = d.sim.now().as_ps();
        let start = now.max(d.next_free.get());
        let service = d.params.access_ps + bytes * d.params.per_byte_ps;
        let done = start + service;
        d.next_free.set(done);
        d.requests.set(d.requests.get() + 1);
        d.busy_ps.set(d.busy_ps.get() + service);
        d.sim.sleep_until(SimTime(done)).await;
    }

    /// `(requests served, total busy picoseconds)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.inner.requests.get(), self.inner.busy_ps.get())
    }
}

/// A RAID-0 stripe over `n` disks: requests are routed by stripe index
/// (page id), so independent pages can be serviced in parallel.
#[derive(Clone)]
pub struct Raid0 {
    disks: Vec<Disk>,
}

impl Raid0 {
    pub fn new(sim: &Sim, params: DiskParams, n: usize) -> Self {
        assert!(n >= 1);
        Raid0 {
            disks: (0..n).map(|_| Disk::new(sim, params)).collect(),
        }
    }

    pub async fn access(&self, stripe_key: u64, bytes: u64) {
        let disk = &self.disks[(stripe_key % self.disks.len() as u64) as usize];
        disk.access(bytes).await;
    }

    pub fn stats(&self) -> Vec<(u64, u64)> {
        self.disks.iter().map(|d| d.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_queue_serially() {
        let sim = Sim::new();
        let disk = Disk::new(
            &sim,
            DiskParams {
                access_ps: 1_000,
                per_byte_ps: 0,
            },
        );
        let mut handles = Vec::new();
        for _ in 0..3 {
            let d = disk.clone();
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                d.access(0).await;
                s.now().as_ps()
            }));
        }
        sim.run();
        let times: Vec<u64> = handles.iter().map(|h| h.try_take().unwrap()).collect();
        assert_eq!(times, vec![1_000, 2_000, 3_000]);
    }

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let sim = Sim::new();
        let disk = Disk::new(
            &sim,
            DiskParams {
                access_ps: 100,
                per_byte_ps: 2,
            },
        );
        let d = disk.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            d.access(50).await;
            s.now().as_ps()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), 100 + 50 * 2);
    }

    #[test]
    fn raid0_parallelizes_different_stripes() {
        let sim = Sim::new();
        let raid = Raid0::new(
            &sim,
            DiskParams {
                access_ps: 1_000,
                per_byte_ps: 0,
            },
            2,
        );
        let mut handles = Vec::new();
        for key in [0u64, 1] {
            let r = raid.clone();
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                r.access(key, 0).await;
                s.now().as_ps()
            }));
        }
        sim.run();
        let times: Vec<u64> = handles.iter().map(|h| h.try_take().unwrap()).collect();
        assert_eq!(times, vec![1_000, 1_000], "different stripes overlap");
    }

    #[test]
    fn stats_accumulate() {
        let sim = Sim::new();
        let disk = Disk::new(&sim, DiskParams::memory_mapped());
        let d = disk.clone();
        sim.spawn(async move {
            d.access(10).await;
            d.access(10).await;
        });
        sim.run();
        let (n, busy) = disk.stats();
        assert_eq!(n, 2);
        assert!(busy > 0);
    }
}
