//! Message channels with per-message delivery latency.
//!
//! The shared-nothing configurations in the paper exchange messages between
//! database instances over IPC mechanisms whose cost depends on the
//! mechanism and on whether the endpoints share a socket (Figure 6).
//! [`Sender::send`] takes the latency for *that* message, so the transport
//! layer in `islands-net` can charge topology-dependent costs per hop.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::{Sim, SimTime};

/// Create an unbounded channel on `sim`. Messages sent with non-zero latency
/// become visible to the receiver only after that much virtual time.
pub fn channel<T>(sim: &Sim) -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(ChanInner {
        sim: sim.clone(),
        state: RefCell::new(ChanState {
            ready: VecDeque::new(),
            pending: BinaryHeap::new(),
            seq: 0,
            recv_waker: None,
            senders: 1,
        }),
    });
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

struct ChanInner<T> {
    sim: Sim,
    state: RefCell<ChanState<T>>,
}

struct ChanState<T> {
    ready: VecDeque<T>,
    pending: BinaryHeap<Reverse<Pending<T>>>,
    seq: u64,
    recv_waker: Option<Waker>,
    senders: usize,
}

struct Pending<T> {
    arrival: u64,
    seq: u64,
    msg: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival, self.seq).cmp(&(other.arrival, other.seq))
    }
}

impl<T> ChanState<T> {
    /// Move messages whose arrival time has passed into the ready queue.
    fn mature(&mut self, now: u64) {
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.arrival <= now {
                let Reverse(p) = self.pending.pop().unwrap();
                self.ready.push_back(p.msg);
            } else {
                break;
            }
        }
    }
}

/// Sending half; clone freely.
pub struct Sender<T> {
    inner: Rc<ChanInner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.borrow_mut().senders += 1;
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            if let Some(w) = st.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Send `msg`; the receiver can observe it `latency_ps` from now.
    pub fn send(&self, msg: T, latency_ps: u64) {
        let now = self.inner.sim.now().as_ps();
        let mut st = self.inner.state.borrow_mut();
        if latency_ps == 0 {
            st.ready.push_back(msg);
            if let Some(w) = st.recv_waker.take() {
                w.wake();
            }
        } else {
            let seq = st.seq;
            st.seq += 1;
            let arrival = now + latency_ps;
            st.pending.push(Reverse(Pending { arrival, seq, msg }));
            // If the receiver is parked, arrange a wake at arrival time.
            if let Some(w) = st.recv_waker.as_ref() {
                self.inner.sim.register_timer(SimTime(arrival), w.clone());
            }
        }
    }
}

/// Receiving half (single consumer).
pub struct Receiver<T> {
    inner: Rc<ChanInner<T>>,
}

impl<T> Receiver<T> {
    /// Await the next message; resolves to `None` once all senders are
    /// dropped and the channel is drained.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking poll for an already-arrived message.
    pub fn try_recv(&self) -> Option<T> {
        let now = self.inner.sim.now().as_ps();
        let mut st = self.inner.state.borrow_mut();
        st.mature(now);
        st.ready.pop_front()
    }

    /// Messages currently in flight or queued.
    pub fn backlog(&self) -> usize {
        let st = self.inner.state.borrow();
        st.ready.len() + st.pending.len()
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let inner = &self.rx.inner;
        let now = inner.sim.now().as_ps();
        let mut st = inner.state.borrow_mut();
        st.mature(now);
        if let Some(msg) = st.ready.pop_front() {
            return Poll::Ready(Some(msg));
        }
        if st.senders == 0 && st.pending.is_empty() {
            return Poll::Ready(None);
        }
        st.recv_waker = Some(cx.waker().clone());
        // If something is in flight, make sure we wake when it lands.
        if let Some(Reverse(p)) = st.pending.peek() {
            inner
                .sim
                .register_timer(SimTime(p.arrival), cx.waker().clone());
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn zero_latency_delivery_is_immediate() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>(&sim);
        let got = Rc::new(Cell::new(0));
        let g = Rc::clone(&got);
        let s = sim.clone();
        sim.spawn(async move {
            let v = rx.recv().await.unwrap();
            g.set(v);
            assert_eq!(s.now(), SimTime(0));
        });
        tx.send(7, 0);
        sim.run();
        assert_eq!(got.get(), 7);
    }

    #[test]
    fn latency_delays_visibility() {
        let sim = Sim::new();
        let (tx, rx) = channel::<&'static str>(&sim);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let m = rx.recv().await.unwrap();
            (m, s.now().as_ps())
        });
        tx.send("hi", 5_000);
        sim.run();
        assert_eq!(h.try_take().unwrap(), ("hi", 5_000));
    }

    #[test]
    fn messages_arrive_in_arrival_time_order() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>(&sim);
        // Sent in one order, latencies invert arrival order.
        tx.send(1, 10_000);
        tx.send(2, 1_000);
        tx.send(3, 5_000);
        let h = sim.spawn(async move {
            let mut out = Vec::new();
            while let Some(v) = rx.recv().await {
                out.push(v);
            }
            out
        });
        drop(tx);
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec![2, 3, 1]);
    }

    #[test]
    fn recv_returns_none_when_senders_gone() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>(&sim);
        let tx2 = tx.clone();
        tx.send(1, 0);
        drop(tx);
        drop(tx2);
        let h = sim.spawn(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (Some(1), None));
    }

    #[test]
    fn try_recv_only_sees_matured() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>(&sim);
        tx.send(9, 1_000);
        assert_eq!(rx.try_recv(), None);
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(2_000).await;
            rx.try_recv()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Some(9));
    }
}
