//! Property tests for the wire protocol: arbitrary messages survive an
//! encode/decode round trip, every truncation of a valid stream is either
//! "wait for more bytes" or a typed error (never a panic, never a wrong
//! message), and hostile length fields are rejected.

use islands_dtxn::Vote;
use islands_obs::{HistSnapshot, Snapshot, BUCKETS, NCATS, NCLASSES};
use islands_server::wire::{FrameReader, Reply, Request, WireError, WireMessage, FRAME_HEADER};
use islands_server::{ServerStats, MAX_FRAME};
use islands_workload::{
    OpKind, PlanBranch, PlanClass, PlanRequest, PlanStep, StepOp, TxnBranch, TxnRequest,
};
use proptest::prelude::*;

fn txn_request() -> impl Strategy<Value = TxnRequest> {
    (
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(any::<u64>(), 0..40),
    )
        .prop_map(|(update, multisite, keys)| TxnRequest {
            kind: if update { OpKind::Update } else { OpKind::Read },
            keys,
            multisite,
        })
}

fn plan_step() -> impl Strategy<Value = PlanStep> {
    prop_oneof![
        (
            0u32..8,
            any::<u64>(),
            prop_oneof![
                Just(StepOp::Read),
                Just(StepOp::Update),
                Just(StepOp::Insert)
            ],
        )
            .prop_map(|(table, key, op)| PlanStep::point(table, key, op)),
        (0u32..8, any::<u64>(), 1u8..=255)
            .prop_map(|(table, key, span)| PlanStep::range(table, key, span)),
    ]
}

fn plan_request() -> impl Strategy<Value = PlanRequest> {
    (
        prop_oneof![
            Just(PlanClass::Generic),
            Just(PlanClass::NewOrder),
            Just(PlanClass::Payment)
        ],
        any::<bool>(),
        prop::collection::vec(plan_step(), 0..24),
    )
        .prop_map(|(class, multisite, steps)| PlanRequest {
            class,
            multisite,
            steps,
        })
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        txn_request().prop_map(Request::Submit),
        Just(Request::Ping),
        Just(Request::Drain),
        Just(Request::Stats),
        Just(Request::Audit),
        (any::<u64>(), txn_request())
            .prop_map(|(gtid, req)| Request::Prepare(TxnBranch { gtid, req })),
        (any::<u64>(), any::<bool>()).prop_map(|(gtid, commit)| Request::Decision { gtid, commit }),
        plan_request().prop_map(Request::SubmitPlan),
        (any::<u64>(), plan_request())
            .prop_map(|(gtid, plan)| Request::PreparePlan(PlanBranch { gtid, plan })),
    ]
}

fn hist_snapshot() -> impl Strategy<Value = HistSnapshot> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(any::<u64>(), BUCKETS..BUCKETS + 1),
    )
        .prop_map(|(count, sum_ns, buckets)| {
            let mut h = HistSnapshot {
                count,
                sum_ns,
                ..HistSnapshot::default()
            };
            h.buckets.copy_from_slice(&buckets);
            h
        })
}

fn server_stats() -> impl Strategy<Value = ServerStats> {
    prop::collection::vec(any::<u64>(), 9..10).prop_map(|v| ServerStats {
        connections: v[0],
        requests: v[1],
        commits: v[2],
        aborts: v[3],
        errors: v[4],
        prepares: v[5],
        decisions: v[6],
        presumed_aborts: v[7],
        in_doubt: v[8],
    })
}

fn obs_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        any::<bool>(),
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(any::<u64>(), NCLASSES * NCATS..NCLASSES * NCATS + 1),
        prop::collection::vec(any::<u64>(), NCLASSES..NCLASSES + 1),
        prop::collection::vec(hist_snapshot(), NCLASSES + 3..NCLASSES + 4),
    )
        .prop_map(|(enabled, queue_depth, in_doubt, phases, txns, hists)| {
            let mut s = Snapshot {
                enabled,
                queue_depth,
                in_doubt,
                ..Snapshot::default()
            };
            for (i, v) in phases.iter().enumerate() {
                s.phase_ns[i / NCATS][i % NCATS] = *v;
            }
            s.txns.copy_from_slice(&txns);
            s.txn_us.copy_from_slice(&hists[..NCLASSES]);
            s.prepare_us = hists[NCLASSES];
            s.decision_us = hists[NCLASSES + 1];
            s.parked_us = hists[NCLASSES + 2];
            s
        })
}

fn vote() -> impl Strategy<Value = Vote> {
    prop_oneof![Just(Vote::Yes), Just(Vote::No), Just(Vote::ReadOnly)]
}

fn reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        (any::<bool>(), any::<u32>(), any::<u64>()).prop_map(|(d, r, us)| Reply::Committed {
            distributed: d,
            retries: r,
            server_micros: us,
        }),
        any::<u32>().prop_map(|retries| Reply::Aborted { retries }),
        prop::collection::vec(any::<u8>(), 0..200).prop_map(|bytes| Reply::Error {
            message: String::from_utf8_lossy(&bytes).into_owned(),
        }),
        Just(Reply::Pong),
        Just(Reply::Draining),
        (any::<u64>(), vote()).prop_map(|(gtid, vote)| Reply::Vote { gtid, vote }),
        any::<u64>().prop_map(|gtid| Reply::Ack { gtid }),
        (server_stats(), obs_snapshot()).prop_map(|(server, obs)| Reply::Stats {
            server,
            obs: Box::new(obs),
        }),
        any::<u64>().prop_map(|sum| Reply::AuditSum { sum }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip(req in request()) {
        let mut frame = Vec::new();
        req.encode_frame(&mut frame);
        let mut rd = FrameReader::new();
        rd.extend(&frame);
        prop_assert_eq!(rd.next_message::<Request>().unwrap(), Some(req));
        prop_assert_eq!(rd.next_message::<Request>().unwrap(), None);
        prop_assert_eq!(rd.buffered(), 0);
    }

    #[test]
    fn replies_round_trip(rep in reply()) {
        let mut frame = Vec::new();
        rep.encode_frame(&mut frame);
        let mut rd = FrameReader::new();
        rd.extend(&frame);
        prop_assert_eq!(rd.next_message::<Reply>().unwrap(), Some(rep));
    }

    #[test]
    fn pipelined_streams_reassemble_from_any_chunking(
        reqs in prop::collection::vec(request(), 1..20),
        chunk in 1usize..64,
    ) {
        let mut bytes = Vec::new();
        for r in &reqs {
            r.encode_frame(&mut bytes);
        }
        let mut rd = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in bytes.chunks(chunk) {
            rd.extend(piece);
            while let Some(r) = rd.next_message::<Request>().unwrap() {
                decoded.push(r);
            }
        }
        prop_assert_eq!(decoded, reqs);
    }

    /// Cutting a valid frame anywhere yields `None` (incomplete) from the
    /// stream layer, and a typed `BadBody`/`Truncated` error from the body
    /// layer if the cut landed inside the payload — never a panic.
    #[test]
    fn truncated_frames_never_panic_and_never_decode(req in request(), cut_seed in any::<u64>()) {
        let mut frame = Vec::new();
        req.encode_frame(&mut frame);
        let cut = (cut_seed % frame.len() as u64) as usize; // 0 <= cut < len
        let mut rd = FrameReader::new();
        rd.extend(&frame[..cut]);
        // The stream layer must ask for more bytes, not hallucinate a frame.
        prop_assert_eq!(rd.next_payload().unwrap(), None);
        // Decoding the truncated *payload* directly must be a typed error.
        if cut > FRAME_HEADER {
            let body = &frame[FRAME_HEADER..cut];
            match Request::decode_payload(body) {
                Ok(got) => prop_assert!(
                    false,
                    "truncated payload decoded as {got:?} (cut={cut})"
                ),
                Err(
                    WireError::BadBody { .. }
                    | WireError::Request(_)
                    | WireError::EmptyFrame
                    | WireError::UnknownTag(_),
                ) => {}
                Err(e) => prop_assert!(false, "unexpected error class {e:?}"),
            }
        }
    }

    /// The stats reply gets its own truncation guarantee: it is by far the
    /// largest frame (fixed ~2 KiB body: server counters + obs snapshot) and
    /// its body length is exact, so *every* strict prefix must be a typed
    /// error — never a panic, never a half-read snapshot. (The generic reply
    /// strategy can't be used here: an Error reply's body is raw UTF-8 with
    /// no length prefix, so its truncations legitimately decode.)
    #[test]
    fn truncated_stats_replies_never_panic_and_never_decode(
        server in server_stats(),
        obs in obs_snapshot(),
        cut_seed in any::<u64>(),
    ) {
        let rep = Reply::Stats { server, obs: Box::new(obs) };
        let mut frame = Vec::new();
        rep.encode_frame(&mut frame);
        let cut = (cut_seed % frame.len() as u64) as usize;
        let mut rd = FrameReader::new();
        rd.extend(&frame[..cut]);
        prop_assert_eq!(rd.next_payload().unwrap(), None);
        if cut > FRAME_HEADER {
            let body = &frame[FRAME_HEADER..cut];
            match Reply::decode_payload(body) {
                Ok(got) => prop_assert!(
                    false,
                    "truncated stats reply decoded as {got:?} (cut={cut})"
                ),
                Err(WireError::BadBody { .. } | WireError::EmptyFrame) => {}
                Err(e) => prop_assert!(false, "unexpected error class {e:?}"),
            }
        }
    }

    /// Any header declaring more than MAX_FRAME bytes is rejected before a
    /// single payload byte is buffered or allocated.
    #[test]
    fn oversized_frames_rejected(extra in 1u32..u32::MAX - MAX_FRAME as u32) {
        let len = MAX_FRAME as u32 + extra;
        let mut rd = FrameReader::new();
        rd.extend(&len.to_le_bytes());
        prop_assert_eq!(
            rd.next_payload(),
            Err(WireError::Oversized { len: len as usize })
        );
    }
}
