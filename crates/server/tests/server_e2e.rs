//! End-to-end tests: a served NativeCluster over real sockets.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use islands_core::native::{
    ExecutorConfig, NativeCluster, NativeClusterConfig, PartitionConfig, PartitionEngine,
    PartitionExecutor,
};
use islands_server::{
    Backend, Client, ClientPool, Endpoint, Reply, Request, Server, ServerConfig, ServerHandle,
};
use islands_workload::{OpKind, TxnBranch, TxnRequest};

static NEXT_SOCK: AtomicU32 = AtomicU32::new(0);

fn uds_endpoint() -> Endpoint {
    let n = NEXT_SOCK.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("islands-e2e-{}-{n}.sock", std::process::id()));
    Endpoint::Uds(p)
}

fn cluster() -> Arc<NativeCluster> {
    Arc::new(
        NativeCluster::build_micro(&NativeClusterConfig {
            n_instances: 4,
            total_rows: 400,
            row_size: 16,
            workers_per_instance: 2,
            buffer_frames: 512,
            ..Default::default()
        })
        .unwrap(),
    )
}

fn spawn(endpoint: Endpoint) -> (Arc<NativeCluster>, ServerHandle) {
    let c = cluster();
    let h = Server::spawn(Arc::clone(&c), endpoint, ServerConfig::default()).unwrap();
    (c, h)
}

fn update(keys: &[u64]) -> TxnRequest {
    TxnRequest {
        kind: OpKind::Update,
        keys: keys.to_vec(),
        multisite: keys.len() > 1,
    }
}

#[test]
fn uds_submit_local_and_distributed() {
    let (cluster, handle) = spawn(uds_endpoint());
    let mut client = Client::connect(handle.endpoint()).unwrap();

    // Keys 0..100 live in instance 0: local, no 2PC.
    match client.submit(&update(&[1, 2])).unwrap() {
        Reply::Committed { distributed, .. } => assert!(!distributed),
        other => panic!("unexpected reply {other:?}"),
    }
    // Keys spanning instances 0 and 3: distributed.
    match client.submit(&update(&[10, 390])).unwrap() {
        Reply::Committed { distributed, .. } => assert!(distributed),
        other => panic!("unexpected reply {other:?}"),
    }
    assert_eq!(cluster.audit_sum().unwrap(), 4);

    assert!(client.ping().unwrap() < Duration::from_secs(1));
    client.drain_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.commits, 2);
    assert_eq!(stats.aborts, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.requests, 4); // 2 submits + ping + drain
}

#[test]
fn tcp_round_trip_works() {
    let (_cluster, handle) = spawn(Endpoint::Tcp("127.0.0.1:0".parse().unwrap()));
    // Port 0 resolved to a real port.
    match handle.endpoint() {
        Endpoint::Tcp(addr) => assert_ne!(addr.port(), 0),
        other => panic!("expected tcp endpoint, got {other}"),
    }
    let mut client = Client::connect(handle.endpoint()).unwrap();
    assert!(matches!(
        client.submit(&update(&[7])).unwrap(),
        Reply::Committed { .. }
    ));
    client.drain_server().unwrap();
    assert_eq!(handle.join().unwrap().commits, 1);
}

#[test]
fn pipelined_replies_come_back_in_order() {
    let (cluster, handle) = spawn(uds_endpoint());
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let batch: Vec<TxnRequest> = (0..50).map(|i| update(&[i * 7 % 400])).collect();
    let replies = client.submit_pipelined(&batch).unwrap();
    assert_eq!(replies.len(), 50);
    assert!(replies.iter().all(|r| matches!(r, Reply::Committed { .. })));
    assert_eq!(cluster.audit_sum().unwrap(), 50);
    client.drain_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn unsatisfiable_request_gets_error_reply_and_connection_survives() {
    let (_cluster, handle) = spawn(uds_endpoint());
    let mut client = Client::connect(handle.endpoint()).unwrap();
    match client.submit(&update(&[999_999])).unwrap() {
        Reply::Error { message } => assert!(message.contains("key not found"), "{message}"),
        other => panic!("unexpected reply {other:?}"),
    }
    // The session decoded a well-formed frame; it must keep serving.
    assert!(matches!(
        client.submit(&update(&[3])).unwrap(),
        Reply::Committed { .. }
    ));
    client.drain_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.commits, 1);
}

#[test]
fn oversized_frame_is_answered_with_error_and_hangup() {
    let (_cluster, handle) = spawn(uds_endpoint());
    let path = match handle.endpoint() {
        Endpoint::Uds(p) => PathBuf::from(p),
        other => panic!("expected uds, got {other}"),
    };
    let mut raw = std::os::unix::net::UnixStream::connect(&path).unwrap();
    raw.write_all(&(islands_server::MAX_FRAME as u32 + 1).to_le_bytes())
        .unwrap();
    raw.flush().unwrap();
    // Server replies with a protocol error frame, then closes.
    let mut reader = islands_server::FrameReader::new();
    let reply = loop {
        match reader.next_message::<Reply>().unwrap() {
            Some(r) => break r,
            None => {
                use std::io::Read;
                let mut buf = [0u8; 1024];
                let n = raw.read(&mut buf).unwrap();
                assert_ne!(n, 0, "server closed without an error reply");
                reader.extend(&buf[..n]);
            }
        }
    };
    match reply {
        Reply::Error { message } => assert!(message.contains("protocol error"), "{message}"),
        other => panic!("unexpected reply {other:?}"),
    }
    handle.initiate_shutdown();
    handle.join().unwrap();
}

#[test]
fn pool_shares_connections_across_threads() {
    let (cluster, handle) = spawn(uds_endpoint());
    let pool = Arc::new(ClientPool::new(handle.endpoint().clone()));
    let mut workers = Vec::new();
    for t in 0..4u64 {
        let pool = Arc::clone(&pool);
        workers.push(std::thread::spawn(move || {
            for i in 0..25u64 {
                let key = (t * 100 + i) % 400;
                match pool.submit(&update(&[key])).unwrap() {
                    Reply::Committed { .. } | Reply::Aborted { .. } => {}
                    other => panic!("unexpected reply {other:?}"),
                }
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    // Checked-in connections are reused, not reopened per request.
    assert!(pool.idle_count() >= 1);
    let committed = handle.stats().commits;
    assert_eq!(cluster.audit_sum().unwrap(), committed);
    pool.get().unwrap().drain_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn drain_completes_while_a_client_keeps_sending() {
    let (_cluster, handle) = spawn(uds_endpoint());
    let ep = handle.endpoint().clone();
    // A client that never stops submitting: its session must still exit
    // once a drain lands (after answering the batch in flight).
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&ep).unwrap();
        let mut replied = 0u64;
        // Submit until the drained server hangs up on us.
        while c.submit(&update(&[replied % 400])).is_ok() {
            replied += 1;
        }
        replied
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut draining = Client::connect(handle.endpoint()).unwrap();
    draining.drain_server().unwrap();
    // The busy session exits after its in-flight batch, so join returns.
    let stats = handle.join().unwrap();
    let replied = busy.join().unwrap();
    assert!(replied > 0, "busy client must have made progress");
    // Every answered submit was counted; at most the final unanswered one
    // can exceed the client's view.
    assert!(stats.commits >= replied);
}

#[test]
fn bad_frame_mid_pipeline_gets_prior_replies_then_error() {
    use islands_server::{Request, WireMessage};
    let (cluster, handle) = spawn(uds_endpoint());
    let path = match handle.endpoint() {
        Endpoint::Uds(p) => PathBuf::from(p),
        other => panic!("expected uds, got {other}"),
    };
    let mut raw = std::os::unix::net::UnixStream::connect(&path).unwrap();
    // One valid submit, then a frame with an unknown tag, in a single write.
    let mut bytes = Vec::new();
    Request::Submit(update(&[1])).encode_frame(&mut bytes);
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.push(0x7F);
    raw.write_all(&bytes).unwrap();
    raw.flush().unwrap();

    let mut reader = islands_server::FrameReader::new();
    let mut replies = Vec::new();
    loop {
        match reader.next_message::<Reply>().unwrap() {
            Some(r) => {
                replies.push(r);
                continue;
            }
            None => {
                use std::io::Read;
                let mut buf = [0u8; 1024];
                let n = raw.read(&mut buf).unwrap();
                if n == 0 {
                    break; // server hung up after the error reply
                }
                reader.extend(&buf[..n]);
            }
        }
    }
    // The request decoded before the bad frame was executed and answered;
    // the bad frame got a protocol error; then the connection closed.
    assert_eq!(replies.len(), 2, "{replies:?}");
    assert!(matches!(replies[0], Reply::Committed { .. }), "{replies:?}");
    match &replies[1] {
        Reply::Error { message } => assert!(message.contains("protocol error"), "{message}"),
        other => panic!("unexpected reply {other:?}"),
    }
    assert_eq!(cluster.audit_sum().unwrap(), 1);
    handle.initiate_shutdown();
    handle.join().unwrap();
}

fn spawn_partition(lo: u64, hi: u64) -> (std::sync::Arc<PartitionEngine>, ServerHandle) {
    let engine = std::sync::Arc::new(
        PartitionEngine::build(&PartitionConfig {
            lo,
            hi,
            row_size: 16,
            buffer_frames: 512,
            ..Default::default()
        })
        .unwrap(),
    );
    let handle = Server::spawn_backend(
        Backend::Partition(std::sync::Arc::clone(&engine)),
        uds_endpoint(),
        ServerConfig::default(),
    )
    .unwrap();
    (engine, handle)
}

fn prepare(gtid: u64, keys: &[u64]) -> Request {
    Request::Prepare(TxnBranch {
        gtid,
        req: TxnRequest {
            kind: OpKind::Update,
            keys: keys.to_vec(),
            multisite: true,
        },
    })
}

#[test]
fn partition_backend_runs_wire_level_2pc_phase_by_phase() {
    use islands_dtxn::Vote;
    let (engine, handle) = spawn_partition(0, 100);
    let mut coord = Client::connect(handle.endpoint()).unwrap();

    // Phase 1: prepare a writer branch — Yes vote, branch held in-doubt.
    coord.send_request(&prepare(7, &[1, 2])).unwrap();
    match coord.recv_reply().unwrap() {
        Reply::Vote { gtid: 7, vote } => assert_eq!(vote, Vote::Yes),
        other => panic!("unexpected reply {other:?}"),
    }
    assert_eq!(handle.stats().in_doubt, 1);
    // Updates are applied in place under X locks (undo images roll them
    // back on abort), so the raw audit scan already sees them — what the
    // prepare guarantees is that the *decision* picks keep-or-undo.
    assert_eq!(engine.audit_sum().unwrap(), 2);

    // Phase 2: commit decision applies the branch and acks.
    coord
        .send_request(&Request::Decision {
            gtid: 7,
            commit: true,
        })
        .unwrap();
    match coord.recv_reply().unwrap() {
        Reply::Ack { gtid: 7 } => {}
        other => panic!("unexpected reply {other:?}"),
    }
    assert_eq!(engine.audit_sum().unwrap(), 2);
    assert_eq!(handle.stats().in_doubt, 0);

    // Read-only branch: ReadOnly vote, no phase 2 required.
    coord
        .send_request(&Request::Prepare(TxnBranch {
            gtid: 8,
            req: TxnRequest {
                kind: OpKind::Read,
                keys: vec![5],
                multisite: true,
            },
        }))
        .unwrap();
    match coord.recv_reply().unwrap() {
        Reply::Vote { gtid: 8, vote } => assert_eq!(vote, Vote::ReadOnly),
        other => panic!("unexpected reply {other:?}"),
    }

    // Abort decision for an unknown gtid is a presumed-abort no-op: acked.
    coord
        .send_request(&Request::Decision {
            gtid: 999,
            commit: false,
        })
        .unwrap();
    assert!(matches!(
        coord.recv_reply().unwrap(),
        Reply::Ack { gtid: 999 }
    ));
    // Commit for an unknown gtid is a protocol error.
    coord
        .send_request(&Request::Decision {
            gtid: 999,
            commit: true,
        })
        .unwrap();
    assert!(matches!(coord.recv_reply().unwrap(), Reply::Error { .. }));

    coord.drain_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.prepares, 2);
    assert_eq!(stats.in_doubt, 0);
    assert_eq!(stats.presumed_aborts, 0);
}

#[test]
fn dropped_coordinator_connection_presumes_abort_and_releases_locks() {
    let (engine, handle) = spawn_partition(0, 100);

    // Coordinator prepares a branch on key 9... and vanishes.
    {
        let mut coord = Client::connect(handle.endpoint()).unwrap();
        coord.send_request(&prepare(11, &[9])).unwrap();
        match coord.recv_reply().unwrap() {
            Reply::Vote { gtid: 11, .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(handle.stats().in_doubt, 1);
    } // connection dropped here, decision never sent

    // The session notices the hangup, presumes abort, and releases the X
    // lock: an ordinary client can now update the same key.
    let mut client = Client::connect(handle.endpoint()).unwrap();
    match client.submit(&update(&[9])).unwrap() {
        Reply::Committed { .. } => {}
        other => panic!("unexpected reply {other:?}"),
    }
    // The prepared update was rolled back; only the new one is visible.
    assert_eq!(engine.audit_sum().unwrap(), 1);

    client.drain_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.presumed_aborts, 1);
    assert_eq!(stats.in_doubt, 0);
}

#[test]
fn cluster_backend_rejects_2pc_frames() {
    let (_cluster, handle) = spawn(uds_endpoint());
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.send_request(&prepare(1, &[1])).unwrap();
    assert!(matches!(client.recv_reply().unwrap(), Reply::Error { .. }));
    client
        .send_request(&Request::Decision {
            gtid: 1,
            commit: false,
        })
        .unwrap();
    assert!(matches!(client.recv_reply().unwrap(), Reply::Error { .. }));
    client.drain_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn drain_while_other_clients_are_connected() {
    let (_cluster, handle) = spawn(uds_endpoint());
    let mut idle_client = Client::connect(handle.endpoint()).unwrap();
    assert!(matches!(
        idle_client.submit(&update(&[5])).unwrap(),
        Reply::Committed { .. }
    ));
    let mut draining = Client::connect(handle.endpoint()).unwrap();
    draining.drain_server().unwrap();
    // Join must complete even though idle_client never disconnects
    // explicitly: idle sessions notice the flag at the next poll tick.
    handle.join().unwrap();
    // The drained server is gone; new submissions fail.
    assert!(idle_client.submit(&update(&[6])).is_err());
}

#[test]
fn connection_churn_is_survived_and_counted() {
    // Companion to the SessionSet unit regression: a server under rapid
    // connect/use/disconnect churn keeps accepting, serves every
    // connection, and drains cleanly afterwards.
    let (_cluster, handle) = spawn(uds_endpoint());
    const CHURN: u64 = 150;
    for i in 0..CHURN {
        let mut c = Client::connect(handle.endpoint()).unwrap();
        match c.submit(&update(&[i % 400])).unwrap() {
            Reply::Committed { .. } | Reply::Aborted { .. } => {}
            other => panic!("churn connection {i}: unexpected reply {other:?}"),
        }
        // Dropping c closes the connection; the session thread exits.
    }
    let mut closer = Client::connect(handle.endpoint()).unwrap();
    closer.drain_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.connections, CHURN + 1);
    assert_eq!(stats.requests, CHURN + 1); // one submit each + drain
}

// ---------------------------------------------------------------------------
// Serial-executor backend: sessions are producers, the partition executes on
// its own pinned thread with no lock-table acquisition.
// ---------------------------------------------------------------------------

fn spawn_executor(lo: u64, hi: u64) -> (Arc<PartitionExecutor>, ServerHandle) {
    let exec = Arc::new(
        PartitionExecutor::spawn(ExecutorConfig {
            partition: PartitionConfig {
                lo,
                hi,
                row_size: 16,
                buffer_frames: 512,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap(),
    );
    let handle = Server::spawn_backend(
        Backend::Executor(Arc::clone(&exec)),
        uds_endpoint(),
        ServerConfig::default(),
    )
    .unwrap();
    (exec, handle)
}

#[test]
fn executor_backend_serves_local_submissions_from_many_connections() {
    let (exec, handle) = spawn_executor(0, 100);
    // Several concurrent connections all enqueue onto the one executor:
    // connection count is decoupled from the single execution thread.
    let mut clients: Vec<Client> = (0..4)
        .map(|_| Client::connect(handle.endpoint()).unwrap())
        .collect();
    for (i, c) in clients.iter_mut().enumerate() {
        for k in 0..10u64 {
            match c.submit(&update(&[(i as u64 * 10 + k) % 100])).unwrap() {
                Reply::Committed {
                    distributed,
                    retries,
                    ..
                } => {
                    assert!(!distributed);
                    assert_eq!(retries, 0, "serial execution never retries");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }
    assert_eq!(exec.audit_sum().unwrap(), 40);
    clients[0].drain_server().unwrap();
    drop(clients);
    let stats = handle.join().unwrap();
    assert_eq!(stats.commits, 40);
    assert_eq!(stats.aborts, 0);
    assert_eq!(stats.in_doubt, 0);
}

#[test]
fn executor_backend_runs_wire_level_2pc_phase_by_phase() {
    use islands_dtxn::Vote;
    let (exec, handle) = spawn_executor(0, 100);
    let mut coord = Client::connect(handle.endpoint()).unwrap();

    // Phase 1: writer branch prepares, parks in-doubt on the executor.
    coord.send_request(&prepare(7, &[1, 2])).unwrap();
    match coord.recv_reply().unwrap() {
        Reply::Vote { gtid: 7, vote } => assert_eq!(vote, Vote::Yes),
        other => panic!("unexpected reply {other:?}"),
    }
    assert_eq!(handle.stats().in_doubt, 1);

    // A conflicting local submission aborts immediately (the executor's
    // in-doubt key set stands in for the locks the branch would hold).
    let mut client = Client::connect(handle.endpoint()).unwrap();
    match client.submit(&update(&[2])).unwrap() {
        Reply::Aborted { .. } => {}
        other => panic!("unexpected reply {other:?}"),
    }
    // Non-conflicting work keeps flowing while the branch is in-doubt.
    assert!(matches!(
        client.submit(&update(&[50])).unwrap(),
        Reply::Committed { .. }
    ));

    // Phase 2: commit decision applies the branch, releases the keys.
    coord
        .send_request(&Request::Decision {
            gtid: 7,
            commit: true,
        })
        .unwrap();
    assert!(matches!(
        coord.recv_reply().unwrap(),
        Reply::Ack { gtid: 7 }
    ));
    assert_eq!(handle.stats().in_doubt, 0);
    assert!(matches!(
        client.submit(&update(&[2])).unwrap(),
        Reply::Committed { .. }
    ));
    assert_eq!(exec.audit_sum().unwrap(), 4);

    // Presumed-abort protocol corners, same answers as the locked backend.
    coord
        .send_request(&Request::Decision {
            gtid: 999,
            commit: false,
        })
        .unwrap();
    assert!(matches!(
        coord.recv_reply().unwrap(),
        Reply::Ack { gtid: 999 }
    ));
    coord
        .send_request(&Request::Decision {
            gtid: 999,
            commit: true,
        })
        .unwrap();
    assert!(matches!(coord.recv_reply().unwrap(), Reply::Error { .. }));

    coord.drain_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.prepares, 1);
    assert_eq!(stats.in_doubt, 0);
    assert_eq!(stats.presumed_aborts, 0);
}

#[test]
fn executor_backend_presumes_abort_when_coordinator_vanishes() {
    let (exec, handle) = spawn_executor(0, 100);
    {
        let mut coord = Client::connect(handle.endpoint()).unwrap();
        coord.send_request(&prepare(11, &[9])).unwrap();
        match coord.recv_reply().unwrap() {
            Reply::Vote { gtid: 11, .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(handle.stats().in_doubt, 1);
    } // coordinator connection dropped, decision never sent

    // The dying session's close presume-aborts its branch on the executor;
    // the key is free again for ordinary traffic.
    let mut client = Client::connect(handle.endpoint()).unwrap();
    match client.submit(&update(&[9])).unwrap() {
        Reply::Committed { .. } => {}
        other => panic!("unexpected reply {other:?}"),
    }
    assert_eq!(exec.audit_sum().unwrap(), 1, "prepared update rolled back");

    client.drain_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.presumed_aborts, 1);
    assert_eq!(stats.in_doubt, 0);
}

// ---------------------------------------------------------------------------
// Accept-latency regression: the acceptor's idle wait must be adaptive.
// ---------------------------------------------------------------------------

#[test]
fn fresh_connection_is_served_in_under_a_millisecond() {
    // Regression: the accept loop used to sleep poll_interval.min(5ms) on
    // every WouldBlock, adding up to 5 ms of connect latency per accept.
    // With the adaptive spin-then-park wait, a connection arriving at a
    // long-idle server must still complete a full connect + ping round
    // trip in well under a millisecond (best-of-N to shrug off scheduler
    // noise on loaded CI machines).
    let (_cluster, handle) = spawn(uds_endpoint());
    // Let the acceptor go fully idle (escalated to its capped park).
    std::thread::sleep(Duration::from_millis(50));
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let started = std::time::Instant::now();
        let mut c = Client::connect(handle.endpoint()).unwrap();
        c.ping().unwrap();
        best = best.min(started.elapsed());
        drop(c);
        std::thread::sleep(Duration::from_millis(10)); // re-idle
    }
    assert!(
        best < Duration::from_millis(1),
        "idle-server connect+ping took {best:?} at best"
    );
    let mut closer = Client::connect(handle.endpoint()).unwrap();
    closer.drain_server().unwrap();
    handle.join().unwrap();
}
