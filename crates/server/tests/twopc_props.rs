//! Property tests dedicated to the 2PC wire frames (`Prepare`, `Decision`,
//! `Vote`, `Ack`): exact round trips, byte-level corruption of the decision
//! and vote fields, truncation, size-field abuse, and direction confusion —
//! a coordinator frame fed to a client-side decoder must be a typed error.
//!
//! `wire_props.rs` covers the framing layer generically; this file attacks
//! the 2PC bodies specifically, because a mis-decoded decision bit is a
//! split-brain commit, not a connection reset.

use islands_dtxn::Vote;
use islands_server::wire::{FrameReader, Reply, Request, WireError, WireMessage, FRAME_HEADER};
use islands_server::MAX_FRAME;
use islands_workload::{OpKind, TxnBranch, TxnRequest};
use proptest::prelude::*;

fn branch() -> impl Strategy<Value = TxnBranch> {
    (
        any::<u64>(),
        any::<bool>(),
        prop::collection::vec(any::<u64>(), 1..40),
    )
        .prop_map(|(gtid, update, keys)| TxnBranch {
            gtid,
            req: TxnRequest {
                kind: if update { OpKind::Update } else { OpKind::Read },
                keys,
                multisite: true,
            },
        })
}

fn vote() -> impl Strategy<Value = Vote> {
    prop_oneof![Just(Vote::Yes), Just(Vote::No), Just(Vote::ReadOnly)]
}

/// Encode a message and strip the length header, leaving `[tag][body]`.
fn payload_of<M: WireMessage>(m: &M) -> Vec<u8> {
    let mut frame = Vec::new();
    m.encode_frame(&mut frame);
    frame.split_off(FRAME_HEADER)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prepare_branches_round_trip(b in branch()) {
        let payload = payload_of(&Request::Prepare(b.clone()));
        prop_assert_eq!(Request::decode_payload(&payload), Ok(Request::Prepare(b)));
    }

    #[test]
    fn decisions_round_trip(gtid in any::<u64>(), commit in any::<bool>()) {
        let payload = payload_of(&Request::Decision { gtid, commit });
        prop_assert_eq!(
            Request::decode_payload(&payload),
            Ok(Request::Decision { gtid, commit })
        );
    }

    #[test]
    fn votes_and_acks_round_trip(gtid in any::<u64>(), v in vote()) {
        let vote_payload = payload_of(&Reply::Vote { gtid, vote: v });
        prop_assert_eq!(Reply::decode_payload(&vote_payload), Ok(Reply::Vote { gtid, vote: v }));
        let ack_payload = payload_of(&Reply::Ack { gtid });
        prop_assert_eq!(Reply::decode_payload(&ack_payload), Ok(Reply::Ack { gtid }));
    }

    /// The commit byte admits exactly 0 and 1. Any other value must be a
    /// typed error — decoding 0x02 as "commit" would be a protocol hole.
    #[test]
    fn corrupt_decision_byte_is_rejected(gtid in any::<u64>(), raw in any::<u8>()) {
        let bad = 2 + raw % 254; // 2..=255
        let mut payload = payload_of(&Request::Decision { gtid, commit: true });
        *payload.last_mut().unwrap() = bad;
        prop_assert_eq!(
            Request::decode_payload(&payload),
            Err(WireError::BadBody { tag: payload[0], needed: 9, had: 9 })
        );
    }

    /// Same for the vote byte: only Yes/No/ReadOnly (0/1/2) exist.
    #[test]
    fn corrupt_vote_byte_is_rejected(gtid in any::<u64>(), raw in any::<u8>()) {
        let bad = 3 + raw % 253; // 3..=255
        let mut payload = payload_of(&Reply::Vote { gtid, vote: Vote::Yes });
        *payload.last_mut().unwrap() = bad;
        prop_assert_eq!(
            Reply::decode_payload(&payload),
            Err(WireError::BadBody { tag: payload[0], needed: 9, had: 9 })
        );
    }

    /// Truncating any 2PC frame mid-body: the stream layer waits for more
    /// bytes; the body layer reports a typed error. Never a panic, never a
    /// shorter message that happens to parse.
    #[test]
    fn truncated_twopc_frames_never_decode(b in branch(), cut_seed in any::<u64>()) {
        let mut frame = Vec::new();
        Request::Prepare(b).encode_frame(&mut frame);
        let cut = (cut_seed % (frame.len() - 1) as u64) as usize + 1; // 1..len
        let mut rd = FrameReader::new();
        rd.extend(&frame[..cut]);
        prop_assert_eq!(rd.next_payload().unwrap(), None);
        if cut > FRAME_HEADER + 1 {
            prop_assert!(Request::decode_payload(&frame[FRAME_HEADER..cut]).is_err());
        }
    }

    /// Appending trailing garbage to an exact-size 2PC body is an error,
    /// not silently ignored bytes (`exactly`, not `need`).
    #[test]
    fn trailing_garbage_after_twopc_bodies_is_rejected(
        gtid in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        for payload in [
            payload_of(&Request::Decision { gtid, commit: false }),
            payload_of(&Reply::Ack { gtid }),
            payload_of(&Reply::Vote { gtid, vote: Vote::No }),
        ] {
            let mut extended = payload;
            extended.extend_from_slice(&garbage);
            let as_req = Request::decode_payload(&extended);
            let as_rep = Reply::decode_payload(&extended);
            prop_assert!(as_req.is_err() && as_rep.is_err(), "garbage accepted");
        }
    }

    /// Direction confusion: participant->coordinator frames (Vote/Ack) fed
    /// to the request decoder — and vice versa — are unknown tags, so a
    /// confused peer fails loudly instead of misreading a gtid.
    #[test]
    fn twopc_frames_do_not_cross_directions(b in branch(), gtid in any::<u64>(), v in vote()) {
        let prep = payload_of(&Request::Prepare(b));
        prop_assert_eq!(Reply::decode_payload(&prep), Err(WireError::UnknownTag(prep[0])));
        let vote = payload_of(&Reply::Vote { gtid, vote: v });
        prop_assert_eq!(Request::decode_payload(&vote), Err(WireError::UnknownTag(vote[0])));
        let ack = payload_of(&Reply::Ack { gtid });
        prop_assert_eq!(Request::decode_payload(&ack), Err(WireError::UnknownTag(ack[0])));
    }

    /// Arbitrary byte soup through both decoders: typed error or a valid
    /// message, never a panic (the decoders are the attack surface of every
    /// listening socket).
    #[test]
    fn arbitrary_payloads_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode_payload(&bytes);
        let _ = Reply::decode_payload(&bytes);
        let mut rd = FrameReader::new();
        rd.extend(&bytes);
        while let Ok(Some(_)) = rd.next_payload() {}
    }

    /// A length header one past MAX_FRAME is rejected even when the declared
    /// body would contain a well-formed 2PC message.
    #[test]
    fn oversized_header_rejected_before_body_inspection(gtid in any::<u64>()) {
        let payload = payload_of(&Request::Decision { gtid, commit: true });
        let mut frame = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        let mut rd = FrameReader::new();
        rd.extend(&frame);
        prop_assert_eq!(rd.next_payload(), Err(WireError::Oversized { len: MAX_FRAME + 1 }));
    }
}
