//! End-to-end tests for multi-process deployments: real instance processes
//! (the `islands-instance` binary), wire-level 2PC between them, and the
//! presumed-abort rule when a participant is killed mid-protocol.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use islands_dtxn::Vote;
use islands_server::deploy::{
    DeployConfig, DeployReply, DeployWorkload, Deployment, FaultPlan, FaultPoint, SpawnMode,
    Transport,
};
use islands_server::{Client, Endpoint, EngineMode, Reply, Request};
use islands_workload::tpcc::{NewOrder, Payment};
use islands_workload::{OpKind, TxnBranch, TxnRequest};

fn config(instances: usize, transport: Transport) -> DeployConfig {
    DeployConfig {
        instances,
        transport,
        total_rows: 400,
        row_size: 16,
        // Tests must not depend on the host having taskset / enough cores.
        pin: false,
        spawn: SpawnMode::Binary(PathBuf::from(env!("CARGO_BIN_EXE_islands-instance"))),
        // Kill-based tests should not wait the full default on a dead peer.
        vote_timeout: Duration::from_secs(2),
        ..Default::default()
    }
}

fn update(keys: &[u64]) -> TxnRequest {
    TxnRequest {
        kind: OpKind::Update,
        keys: keys.to_vec(),
        multisite: keys.len() > 1,
    }
}

fn outcome(reply: DeployReply) -> islands_server::DeployOutcome {
    match reply {
        DeployReply::Outcome(o) => o,
        other => panic!("expected an outcome, got {other:?}"),
    }
}

/// A fresh per-test WAL directory under the system temp dir; any leftovers
/// from a previous run of the same test are removed first.
fn temp_wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("islands-e2e-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Submit until the request commits. After an instance restart the deploy
/// client's cached connection is stale: the first send observes the dead
/// socket (`InstanceDown` or an I/O error), the retry reconnects with
/// backoff. A request that keeps aborting — e.g. against a branch whose
/// footprint was never released — exhausts the budget and panics.
fn submit_until_committed(
    client: &mut islands_server::DeployClient,
    req: &TxnRequest,
) -> islands_server::DeployOutcome {
    for _ in 0..40 {
        match client.submit(req) {
            Ok(DeployReply::Outcome(o)) if o.committed => return o,
            Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    panic!("request never committed: {req:?}");
}

#[test]
fn four_process_uds_deployment_commits_local_and_multisite() {
    let deploy = Arc::new(Deployment::spawn(&config(4, Transport::Uds)).unwrap());
    assert_eq!(deploy.instances(), 4);
    let mut client = deploy.client().unwrap();

    // Local: keys 0..100 live in instance 0.
    let local = outcome(client.submit(&update(&[1, 2])).unwrap());
    assert!(local.committed);
    assert!(!local.distributed);

    // Multisite: instances 0, 1, 3 — wire-level 2PC.
    let multi = outcome(client.submit(&update(&[10, 150, 390])).unwrap());
    assert!(multi.committed, "multisite 2PC must commit: {multi:?}");
    assert!(multi.distributed);
    assert_eq!(deploy.decided_commits(), 1, "one forced commit decision");
    assert_eq!(deploy.presumed_aborts(), 0);

    // Distributed read-only: commits without forcing a decision.
    let ro = outcome(
        client
            .submit(&TxnRequest {
                kind: OpKind::Read,
                keys: vec![20, 250],
                multisite: true,
            })
            .unwrap(),
    );
    assert!(ro.committed);
    assert!(ro.distributed);
    assert_eq!(
        deploy.decided_commits(),
        1,
        "read-only 2PC must not force a decision"
    );

    drop(client);
    let reports = Arc::try_unwrap(deploy)
        .ok()
        .expect("no other refs")
        .shutdown();
    let mut commits = 0;
    let mut prepares = 0;
    for r in &reports {
        assert!(r.clean, "instance {} unclean: {}", r.index, r.detail);
        let stats = r.stats.expect("stats parsed");
        assert_eq!(stats.in_doubt, 0);
        assert_eq!(stats.presumed_aborts, 0);
        commits += stats.commits;
        prepares += stats.prepares;
    }
    // 1 local commit + 3 committed update branches; the read-only branches
    // commit nothing. Prepares: 3 update branches + 2 read-only branches.
    assert_eq!(commits, 4);
    assert_eq!(prepares, 5);
}

#[test]
fn tcp_deployment_round_trips() {
    let deploy = Arc::new(Deployment::spawn(&config(2, Transport::Tcp)).unwrap());
    let mut client = deploy.client().unwrap();
    let multi = outcome(client.submit(&update(&[10, 350])).unwrap());
    assert!(multi.committed);
    assert!(multi.distributed);
    drop(client);
    let reports = Arc::try_unwrap(deploy)
        .ok()
        .expect("no other refs")
        .shutdown();
    assert!(reports.iter().all(|r| r.clean), "{reports:?}");
}

#[test]
fn killed_participant_mid_prepare_presumes_abort_and_survivors_serve() {
    let deploy = Arc::new(Deployment::spawn(&config(2, Transport::Uds)).unwrap());
    let mut client = deploy.client().unwrap();

    // Sanity: both instances answer before the kill.
    assert!(outcome(client.submit(&update(&[10, 350])).unwrap()).committed);

    // Kill instance 1 (SIGKILL: no drain, no goodbye). The next multisite
    // transaction's prepare cannot reach it; the coordinator must presume
    // abort — and instance 0, which may have voted Yes already, must get an
    // abort decision so nothing stays in doubt.
    deploy.kill_instance(1).unwrap();
    let dead = outcome(client.submit(&update(&[20, 360])).unwrap());
    assert!(!dead.committed);
    assert!(dead.presumed_abort, "abort must be presumed: {dead:?}");
    assert!(deploy.presumed_aborts() >= 1);

    // The surviving instance stays serviceable: the very keys the aborted
    // branch touched are unlocked and writable.
    let local = outcome(client.submit(&update(&[20, 30])).unwrap());
    assert!(local.committed, "survivor must serve: {local:?}");

    // Single-site traffic to the dead instance reports it down rather than
    // hanging or corrupting anything.
    match client.submit(&update(&[350])).unwrap() {
        DeployReply::InstanceDown(1) => {}
        other => panic!("expected InstanceDown(1), got {other:?}"),
    }

    drop(client);
    let reports = Arc::try_unwrap(deploy)
        .ok()
        .expect("no other refs")
        .shutdown();
    let survivor = &reports[0];
    assert!(survivor.clean, "survivor unclean: {}", survivor.detail);
    let stats = survivor.stats.expect("stats parsed");
    assert_eq!(stats.in_doubt, 0, "no in-doubt leak on the survivor");
    // The killed instance is reported, not hidden.
    assert!(!reports[1].clean);
}

#[test]
fn coordinator_crash_between_prepare_and_decision_leaves_no_leak() {
    let deploy = Arc::new(Deployment::spawn(&config(1, Transport::Uds)).unwrap());

    // A raw wire client plays a coordinator that prepares and then crashes.
    {
        let mut coord = Client::connect(&deploy.endpoint(0)).unwrap();
        coord
            .send_request(&Request::Prepare(TxnBranch {
                gtid: 77,
                req: update(&[5]),
            }))
            .unwrap();
        match coord.recv_reply().unwrap() {
            islands_server::Reply::Vote { gtid: 77, .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
    } // coordinator "crashes": connection drops with the branch in doubt

    // The instance applies presumed abort on connection loss: a normal
    // client can immediately lock and update the same key.
    let mut client = deploy.client().unwrap();
    let again = outcome(client.submit(&update(&[5])).unwrap());
    assert!(again.committed);

    drop(client);
    let reports = Arc::try_unwrap(deploy)
        .ok()
        .expect("no other refs")
        .shutdown();
    let r = &reports[0];
    assert!(r.clean, "instance unclean: {}", r.detail);
    let stats = r.stats.expect("stats parsed");
    assert_eq!(stats.presumed_aborts, 1);
    assert_eq!(stats.in_doubt, 0);
}

#[test]
fn midrun_stats_scrape_sees_live_counters_and_populated_breakdown() {
    // The observability acceptance path: a loaded two-instance deployment is
    // scraped *while it serves* — on a separate connection, exactly like
    // `islands-top` — and the scrape must show (1) monotonically increasing
    // commit counters between two scrapes with load in between, and (2) all
    // five Fig. 11 breakdown categories populated, plus the 2PC prepare and
    // decision histograms, because the load includes multisite updates.
    let deploy = Arc::new(Deployment::spawn(&config(2, Transport::Uds)).unwrap());
    let mut client = deploy.client().unwrap();

    // With 400 rows on 2 instances, keys 0..200 are instance 0's; a
    // [k, 350-k] pair spans both instances (wire 2PC).
    let mut load = |rounds: u64| {
        for i in 0..rounds {
            let k = i % 100;
            assert!(outcome(client.submit(&update(&[k])).unwrap()).committed);
            assert!(
                outcome(client.submit(&update(&[k + 1, 350 - k])).unwrap()).committed,
                "multisite update {i} must commit"
            );
        }
    };
    load(40);

    // Scrape instance 0 mid-run on a dedicated connection.
    let mut probe = Client::connect(&deploy.endpoint(0)).unwrap();
    let (s1, o1) = probe.stats().unwrap();
    assert!(o1.enabled, "obs must be on by default");
    assert!(s1.commits > 0, "first scrape must see commits: {s1:?}");
    assert!(
        s1.prepares > 0,
        "multisite load must have prepared branches"
    );

    load(20);

    let (s2, o2) = probe.stats().unwrap();
    assert!(
        s2.commits > s1.commits,
        "commits must grow between scrapes: {} -> {}",
        s1.commits,
        s2.commits
    );
    assert!(s2.requests > s1.requests);

    // Every Fig. 11 category has accumulated time somewhere: execution and
    // logging from the updates themselves, locking from the 2PL chokepoint,
    // communication from wire frame handling, management from session
    // bookkeeping around the engine call.
    for cat in islands_obs::BreakdownCategory::ALL {
        assert!(
            o2.cat_ns(cat) > 0,
            "breakdown category {} never accumulated",
            cat.label()
        );
    }
    // Local submits are counted as completed transactions on the instance;
    // multisite work reaches a *participant* only as Prepare/Decision
    // branches (the coordinator holds the txn count), so it shows up here as
    // multisite-class phase time plus populated 2PC phase histograms.
    assert!(o2.txns[islands_obs::TxnClass::Local.index()] > 0);
    let multi_ns: u64 = o2.phase_ns[islands_obs::TxnClass::Multisite.index()]
        .iter()
        .sum();
    assert!(multi_ns > 0, "no multisite-class phase time on participant");
    assert!(o2.prepare_us.count > 0, "prepare hist empty");
    assert!(o2.decision_us.count > 0, "decision hist empty");
    assert!(o2.txn_us[0].count > 0);

    // The scrape is non-disruptive: the deployment still serves and drains
    // clean afterwards.
    load(5);
    drop(probe);
    drop(client);
    let reports = Arc::try_unwrap(deploy)
        .ok()
        .expect("no other refs")
        .shutdown();
    for r in &reports {
        assert!(r.clean, "instance {} unclean: {}", r.index, r.detail);
        assert_eq!(r.stats.expect("stats parsed").in_doubt, 0);
    }
}

#[test]
fn serial_engine_deployment_commits_local_and_multisite_and_drains_clean() {
    // The serial executor engine, end to end across real processes: each
    // instance child runs a PartitionExecutor (no lock table on the local
    // fast path) behind the same wire protocol, so local traffic, 2PC, and
    // the teardown invariants must all behave exactly like the locked
    // engine's.
    let deploy = Arc::new(
        Deployment::spawn(&DeployConfig {
            engine: EngineMode::Serial,
            ..config(2, Transport::Uds)
        })
        .unwrap(),
    );
    let mut client = deploy.client().unwrap();

    let local = outcome(client.submit(&update(&[1, 2])).unwrap());
    assert!(local.committed);
    assert!(!local.distributed);

    // Multisite across both instances: wire-level 2PC against executors.
    let multi = outcome(client.submit(&update(&[10, 350])).unwrap());
    assert!(multi.committed, "serial-engine 2PC must commit: {multi:?}");
    assert!(multi.distributed);
    assert_eq!(deploy.decided_commits(), 1);
    assert_eq!(deploy.presumed_aborts(), 0);

    drop(client);
    let reports = Arc::try_unwrap(deploy)
        .ok()
        .expect("no other refs")
        .shutdown();
    let mut commits = 0;
    for r in &reports {
        assert!(r.clean, "instance {} unclean: {}", r.index, r.detail);
        let stats = r.stats.expect("stats parsed");
        assert_eq!(stats.in_doubt, 0);
        commits += stats.commits;
    }
    // 1 local commit + 2 committed update branches.
    assert_eq!(commits, 3);
}

#[test]
fn tpcc_neworder_and_remote_payment_audit_consistent_in_both_engines() {
    // TPC-C over the wire, end to end: a two-instance deployment serving
    // warehouses 0..2 (instance 0) and 2..4 (instance 1). NewOrders are
    // single-home plans on the owner's fast path; remote-warehouse Payments
    // split into two PreparePlan branches and run real wire-level 2PC. The
    // closing invariant is the audit identity: committed row writes across
    // the whole deployment grow by exactly the `write_rows()` sum of the
    // committed plans — both branches of every remote Payment included,
    // nothing double-counted, nothing leaked in doubt.
    for engine in [EngineMode::Locked, EngineMode::Serial] {
        let deploy = Arc::new(
            Deployment::spawn(&DeployConfig {
                engine,
                workload: DeployWorkload::Tpcc { warehouses: 4 },
                ..config(2, Transport::Uds)
            })
            .unwrap(),
        );
        let mut client = deploy.client().unwrap();
        let before = client.audit_total().unwrap();

        let mut expected = 0u64;
        // NewOrders homed at warehouse 0: never distributed.
        for i in 0..10u64 {
            let no = NewOrder {
                w_id: 0,
                d_id: i % 10,
                c_id: (i * 17) % 3000,
                items: vec![i % 1000, (i * 7 + 1) % 1000, 999],
            };
            let plan = no.plan(i); // order key (0 << 32) | i
            let done = outcome(client.submit_plan(&plan).unwrap());
            assert!(done.committed, "[{engine:?}] NewOrder {i}: {done:?}");
            assert!(!done.distributed, "[{engine:?}] NewOrder is single-home");
            expected += plan.write_rows();
        }
        // Remote Payments: home warehouse 1 (instance 0), customer at
        // warehouse 3 (instance 1) — every one crosses the wire as 2PC.
        // Half select the customer by name (range read on the branch).
        for i in 0..10u64 {
            let pay = Payment {
                w_id: 1,
                d_id: i % 10,
                c_w_id: 3,
                c_d_id: (i + 3) % 10,
                c_id: (i * 31) % 3000,
                amount: 100 + i,
            };
            assert!(pay.is_remote());
            let plan = pay.plan((1 << 32) | (0x100 + i), i % 2 == 0);
            assert!(plan.multisite);
            let done = outcome(client.submit_plan(&plan).unwrap());
            assert!(done.committed, "[{engine:?}] remote Payment {i}: {done:?}");
            assert!(done.distributed, "[{engine:?}] Payment must run wire 2PC");
            expected += plan.write_rows();
        }
        assert_eq!(deploy.decided_commits(), 10, "[{engine:?}] one per Payment");
        assert_eq!(deploy.presumed_aborts(), 0);

        let after = client.audit_total().unwrap();
        assert_eq!(
            after - before,
            expected,
            "[{engine:?}] audit delta must equal committed write_rows"
        );

        drop(client);
        let reports = Arc::try_unwrap(deploy)
            .ok()
            .expect("no other refs")
            .shutdown();
        for r in &reports {
            assert!(
                r.clean,
                "[{engine:?}] instance {} unclean: {}",
                r.index, r.detail
            );
            let stats = r.stats.expect("stats parsed");
            assert_eq!(stats.in_doubt, 0, "[{engine:?}] in-doubt leak");
            assert_eq!(stats.presumed_aborts, 0);
        }
    }
}

#[test]
fn resolver_socket_answers_decided_commit_and_presumes_abort_for_unknown() {
    // The in-doubt resolution wire path in isolation: a deployment with a
    // WAL directory exposes the coordinator's resolver socket, which must
    // answer `ResolveGtid` from the durable decision log — commit for a
    // forced decision, abort (presumed) for any gtid it has never heard of.
    let wal_dir = temp_wal_dir("resolver");
    let deploy = Arc::new(
        Deployment::spawn(&DeployConfig {
            wal_dir: Some(wal_dir.clone()),
            ..config(2, Transport::Uds)
        })
        .unwrap(),
    );
    let mut client = deploy.client().unwrap();
    // Gtid 1: a committed multisite update, forced to the decision log.
    assert!(outcome(client.submit(&update(&[10, 350])).unwrap()).committed);
    assert_eq!(deploy.decided_commits(), 1);

    let ep = deploy
        .resolver_endpoint()
        .expect("wal_dir deployments expose a resolver");
    let mut raw = Client::connect(&ep).unwrap();
    raw.send_request(&Request::ResolveGtid { gtid: 1 }).unwrap();
    match raw.recv_reply().unwrap() {
        Reply::Resolved { gtid: 1, commit } => assert!(commit, "forced commit must resolve commit"),
        other => panic!("unexpected reply {other:?}"),
    }
    raw.send_request(&Request::ResolveGtid { gtid: 4242 })
        .unwrap();
    match raw.recv_reply().unwrap() {
        Reply::Resolved { gtid: 4242, commit } => {
            assert!(!commit, "unknown gtid must presume abort")
        }
        other => panic!("unexpected reply {other:?}"),
    }

    drop(raw);
    drop(client);
    let reports = Arc::try_unwrap(deploy)
        .ok()
        .expect("no other refs")
        .shutdown();
    assert!(reports.iter().all(|r| r.clean), "{reports:?}");
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn restart_instance_reclaims_stale_socket_and_serves_again() {
    // Regression: SIGKILL leaves the instance's UDS socket file behind. A
    // respawn on the same path must reclaim it (not fail with AddrInUse,
    // not leave a dead file that eats the next connection) and the
    // deployment's cached client must recover through its reconnect path.
    let deploy = Arc::new(Deployment::spawn(&config(1, Transport::Uds)).unwrap());
    let sock = match deploy.endpoint(0) {
        Endpoint::Uds(p) => p,
        other => panic!("uds deployment, got {other:?}"),
    };
    let mut client = deploy.client().unwrap();
    assert!(outcome(client.submit(&update(&[5])).unwrap()).committed);

    deploy.kill_instance(0).unwrap();
    assert!(sock.exists(), "SIGKILL must leave the socket file behind");
    deploy.restart_instance(0).unwrap();

    // A fresh connection reaches the rebound socket immediately...
    let mut fresh = Client::connect(&deploy.endpoint(0)).unwrap();
    fresh.ping().unwrap();
    // ...and the deploy client's stale cached connection retries through.
    let done = submit_until_committed(&mut client, &update(&[7]));
    assert!(!done.distributed);

    drop(fresh);
    drop(client);
    let reports = Arc::try_unwrap(deploy)
        .ok()
        .expect("no other refs")
        .shutdown();
    assert!(
        reports[0].clean,
        "restarted instance unclean: {}",
        reports[0].detail
    );
    assert_eq!(reports[0].stats.expect("stats parsed").in_doubt, 0);
}

#[test]
fn killed_participant_rejoins_and_resolves_in_doubt_in_both_engines() {
    // The headline crash drill. Per engine mode: a two-instance WAL-backed
    // deployment loses instance 1 to a scripted SIGKILL *after* it voted
    // Yes (prepare records durable) but *before* the commit decision
    // reaches it, with a second branch prepared by a coordinator that never
    // decides. After `restart_instance` the rejoined process must have
    // replayed its WAL, asked the coordinator's resolver, and settled both
    // ways: the decided gtid commits, the undecided one presumed-aborts —
    // then keep serving local and 2PC traffic with the audit identity
    // intact and nothing left in doubt at drain.
    for engine in [EngineMode::Locked, EngineMode::Serial] {
        let wal_dir = temp_wal_dir(&format!("rejoin-{engine:?}"));
        let deploy = Arc::new(
            Deployment::spawn(&DeployConfig {
                engine,
                wal_dir: Some(wal_dir.clone()),
                ..config(2, Transport::Uds)
            })
            .unwrap(),
        );
        let mut client = deploy.client().unwrap();
        let base = client.audit_total().unwrap();

        // Gtid 1: baseline multisite commit, both instances healthy.
        assert!(
            outcome(client.submit(&update(&[10, 350])).unwrap()).committed,
            "[{engine:?}] baseline"
        );

        // The undecided branch: a raw coordinator prepares gtid 9001 on
        // instance 1 and then goes silent *without disconnecting* — a
        // disconnect would trigger the live presumed-abort path; staying
        // connected keeps the branch in doubt until the SIGKILL.
        let mut zombie = Client::connect(&deploy.endpoint(1)).unwrap();
        zombie
            .send_request(&Request::Prepare(TxnBranch {
                gtid: 9001,
                req: update(&[370]),
            }))
            .unwrap();
        match zombie.recv_reply().unwrap() {
            Reply::Vote {
                gtid: 9001,
                vote: Vote::Yes,
            } => {}
            other => panic!("[{engine:?}] unexpected reply {other:?}"),
        }

        // Gtid 2: the scripted fault kills instance 1 after both Yes votes
        // are in but before the decision frame goes out. The coordinator
        // forces the commit decision first, so this transaction *is*
        // committed — the victim just never hears it until recovery asks.
        deploy.arm_fault(FaultPlan {
            point: FaultPoint::PostPreparePreDecision,
            victim: 1,
        });
        let decided = outcome(client.submit(&update(&[20, 360])).unwrap());
        assert!(
            decided.committed,
            "[{engine:?}] forced commit must stand: {decided:?}"
        );
        assert!(decided.distributed);
        assert_eq!(deploy.faults_fired(), 1, "[{engine:?}] fault must fire");
        assert_eq!(deploy.decided_commits(), 2);
        drop(zombie); // the instance is dead; this disconnect reaches nobody

        // Rejoin: replay the WAL (parking gtids 2 and 9001), dial the
        // resolver before READY, settle both branches.
        deploy.restart_instance(1).unwrap();

        // Key 370 commits only if gtid 9001's presumed abort released its
        // parked footprint; the submit also walks the client's stale-socket
        // reconnect path.
        let freed = submit_until_committed(&mut client, &update(&[370]));
        assert!(!freed.distributed);

        // Audit identity across the deployment: baseline (2 rows) + the
        // decided gtid's two branches (2 rows — instance 1's applied during
        // recovery) + key 370 (1 row); the aborted branch contributes 0.
        assert_eq!(
            client.audit_total().unwrap() - base,
            5,
            "[{engine:?}] audit after rejoin"
        );

        // The rejoined instance's own metrics tell the recovery story.
        let mut probe = Client::connect(&deploy.endpoint(1)).unwrap();
        let (_, snap) = probe.stats().unwrap();
        assert_eq!(snap.recoveries, 1, "[{engine:?}] one WAL replay");
        assert_eq!(
            snap.in_doubt_commit, 1,
            "[{engine:?}] decided gtid resolved commit"
        );
        assert_eq!(
            snap.in_doubt_abort, 1,
            "[{engine:?}] undecided gtid presumed abort"
        );
        drop(probe);

        // And it serves wire 2PC again: same keys as the decided gtid.
        let again = outcome(client.submit(&update(&[20, 360])).unwrap());
        assert!(
            again.committed && again.distributed,
            "[{engine:?}] rejoined 2PC: {again:?}"
        );
        assert_eq!(client.audit_total().unwrap() - base, 7);

        drop(client);
        let reports = Arc::try_unwrap(deploy)
            .ok()
            .expect("no other refs")
            .shutdown();
        for r in &reports {
            assert!(
                r.clean,
                "[{engine:?}] instance {} unclean: {}",
                r.index, r.detail
            );
            assert_eq!(
                r.stats.expect("stats parsed").in_doubt,
                0,
                "[{engine:?}] in-doubt leak at drain"
            );
        }
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
}
