//! Blocking client library: single connections and a connection pool.
//!
//! [`Client`] is one connection speaking the wire protocol: submit a
//! transaction and wait ([`submit`](Client::submit)), or ship a whole
//! pipeline of requests in one write and collect the replies in order
//! ([`submit_pipelined`](Client::submit_pipelined)) — the latter is what
//! lets the server's group-commit batch window actually form groups.
//!
//! [`ClientPool`] is a small checkout/checkin pool for sharing connections
//! across threads; a connection that hits an I/O error is discarded rather
//! than returned, so the pool never hands out a stream with undrained
//! replies on it.

use std::io::{self, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use islands_workload::{PlanRequest, TxnRequest};

use crate::server::{Conn, Endpoint};
use crate::wire::{FrameReader, Reply, Request, WireMessage};

/// One blocking connection to a served deployment.
pub struct Client {
    conn: Conn,
    reader: FrameReader,
    scratch: Vec<u8>,
}

impl Client {
    /// Connect to `endpoint` (TCP connections enable `TCP_NODELAY`).
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        Ok(Client {
            conn: Conn::connect(endpoint)?,
            reader: FrameReader::new(),
            scratch: Vec::new(),
        })
    }

    /// Connect, retrying for up to `timeout` while the endpoint refuses or
    /// does not exist yet — for racing a just-spawned server.
    pub fn connect_with_retry(endpoint: &Endpoint, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(endpoint) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        loop {
            match self.reader.next_message::<Reply>() {
                Ok(Some(reply)) => return Ok(reply),
                Ok(None) => {
                    if self.reader.fill_from(&mut self.conn)? == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection mid-reply",
                        ));
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn send(&mut self, requests: &[Request]) -> io::Result<()> {
        self.scratch.clear();
        for r in requests {
            r.encode_frame(&mut self.scratch);
        }
        self.conn.write_all(&self.scratch)?;
        self.conn.flush()
    }

    /// Submit one transaction and wait for its outcome.
    pub fn submit(&mut self, txn: &TxnRequest) -> io::Result<Reply> {
        self.send(std::slice::from_ref(&Request::Submit(txn.clone())))?;
        self.read_reply()
    }

    /// Ship one raw request without waiting for the reply. Lower-level than
    /// [`submit`](Self::submit): a 2PC coordinator uses this to fan a
    /// `Prepare` out to every participant before collecting any votes.
    pub fn send_request(&mut self, request: &Request) -> io::Result<()> {
        self.send(std::slice::from_ref(request))
    }

    /// Read the next reply frame (replies arrive in request order).
    pub fn recv_reply(&mut self) -> io::Result<Reply> {
        self.read_reply()
    }

    /// Bound how long [`recv_reply`](Self::recv_reply) blocks. `None` waits
    /// forever. A timed-out read surfaces as `WouldBlock`/`TimedOut`; the
    /// coordinator treats that as a participant failure (presumed abort).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_timeout(timeout)
    }

    /// Pipeline many transactions in one write; replies come back in
    /// submission order.
    pub fn submit_pipelined(&mut self, txns: &[TxnRequest]) -> io::Result<Vec<Reply>> {
        let requests: Vec<Request> = txns.iter().cloned().map(Request::Submit).collect();
        self.send(&requests)?;
        (0..txns.len()).map(|_| self.read_reply()).collect()
    }

    /// Submit one multi-step transaction plan and wait for its outcome.
    pub fn submit_plan(&mut self, plan: &PlanRequest) -> io::Result<Reply> {
        self.send(std::slice::from_ref(&Request::SubmitPlan(plan.clone())))?;
        self.read_reply()
    }

    /// Scrape the instance's audit sum (total committed row writes across
    /// every table it serves). Non-disruptive, like [`stats`](Self::stats).
    pub fn audit(&mut self) -> io::Result<u64> {
        self.send(&[Request::Audit])?;
        match self.read_reply()? {
            Reply::AuditSum { sum } => Ok(sum),
            other => Err(unexpected("AuditSum", &other)),
        }
    }

    /// Round-trip latency floor: send a ping, time the pong.
    pub fn ping(&mut self) -> io::Result<Duration> {
        let start = Instant::now();
        self.send(&[Request::Ping])?;
        match self.read_reply()? {
            Reply::Pong => Ok(start.elapsed()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Scrape the server's live stats: wire counters plus the instance
    /// process's observability snapshot. Non-disruptive — the run continues.
    pub fn stats(&mut self) -> io::Result<(crate::ServerStats, islands_obs::Snapshot)> {
        self.send(&[Request::Stats])?;
        match self.read_reply()? {
            Reply::Stats { server, obs } => Ok((server, *obs)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the server to drain and wait for the acknowledgment.
    pub fn drain_server(&mut self) -> io::Result<()> {
        self.send(&[Request::Drain])?;
        match self.read_reply()? {
            Reply::Draining => Ok(()),
            other => Err(unexpected("Draining", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected {wanted}, server sent {got:?}"),
    )
}

/// Checkout/checkin pool of [`Client`] connections to one endpoint.
///
/// Connections are created lazily up to no particular cap — the pool's job
/// is reuse, not admission control. [`get`](ClientPool::get) hands out a
/// [`PooledClient`] guard that returns the connection on drop unless it was
/// [`discard`](PooledClient::discard)ed (or observed an error via the
/// `submit` helpers, which discard automatically).
pub struct ClientPool {
    endpoint: Endpoint,
    idle: Mutex<Vec<Client>>,
}

impl ClientPool {
    pub fn new(endpoint: Endpoint) -> Self {
        ClientPool {
            endpoint,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Endpoint this pool connects to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of idle pooled connections.
    pub fn idle_count(&self) -> usize {
        self.idle_guard().len()
    }

    /// The idle list survives a holder's panic structurally intact (it only
    /// ever sees `push`/`pop` of plain connections), so recover from mutex
    /// poisoning instead of cascading the panic into every later caller.
    fn idle_guard(&self) -> std::sync::MutexGuard<'_, Vec<Client>> {
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Check out an idle connection or open a new one.
    pub fn get(&self) -> io::Result<PooledClient<'_>> {
        let reused = self.idle_guard().pop();
        let client = match reused {
            Some(c) => c,
            None => Client::connect(&self.endpoint)?,
        };
        Ok(PooledClient {
            pool: self,
            client: Some(client),
        })
    }

    /// Convenience: check out, submit, check in (discarding on error).
    pub fn submit(&self, txn: &TxnRequest) -> io::Result<Reply> {
        let mut c = self.get()?;
        match c.submit(txn) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                c.discard();
                Err(e)
            }
        }
    }

    fn put_back(&self, client: Client) {
        self.idle_guard().push(client);
    }
}

/// RAII guard over a pooled connection.
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<Client>,
}

impl PooledClient<'_> {
    /// Drop the connection instead of returning it to the pool (use after
    /// any I/O error: the stream may hold half-read replies).
    pub fn discard(&mut self) {
        self.client = None;
    }
}

impl std::ops::Deref for PooledClient<'_> {
    type Target = Client;
    fn deref(&self) -> &Client {
        match self.client.as_ref() {
            Some(c) => c,
            // `discard` is the guard's final use in every caller; getting
            // here is a bug in this module, not a runtime condition.
            None => unreachable!("pooled client used after discard"),
        }
    }
}

impl std::ops::DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut Client {
        match self.client.as_mut() {
            Some(c) => c,
            None => unreachable!("pooled client used after discard"),
        }
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.client.take() {
            self.pool.put_back(c);
        }
    }
}
