//! Multi-process shared-nothing deployments.
//!
//! The paper's central comparison is between deployments of *separate OS
//! processes*: shared-everything (one instance spanning the machine),
//! island-sized shared-nothing, and fine-grained shared-nothing, where
//! multisite transactions pay real distributed-commit and IPC costs
//! (Porobic et al., §3, Figs. 9–12). [`Deployment::spawn`] stands such a
//! topology up for real:
//!
//! * **One process per instance.** Each child runs a
//!   [`PartitionEngine`] owning a
//!   contiguous key range, served over the wire protocol
//!   ([`Backend::Partition`]). Children are re-executions of the host
//!   binary ([`SpawnMode::SelfExec`]) or a dedicated `islands-instance`
//!   binary ([`SpawnMode::Binary`]).
//! * **Topology-pinned.** Instance `i` is pinned (via `taskset`, when
//!   available) to the cores `hwtopo`'s island placement assigns it on the
//!   *detected host* topology — the paper's "N islands" layout, not a
//!   simulated one.
//! * **Wire-level 2PC.** Single-site requests go straight to the owning
//!   instance as `Submit` frames. Multisite requests run presumed-abort
//!   two-phase commit: the [`DeployClient`] coordinator splits the request
//!   into per-instance branches, fans out `Prepare` frames, collects
//!   `Vote`s, forces commit decisions to the coordinator log, delivers
//!   `Decision`s, and collects `Ack`s — driving the pure
//!   [`islands_dtxn::Coordinator`] state machine with bytes on sockets
//!   instead of function calls.
//! * **Presumed abort under failure.** A participant that cannot be
//!   reached (connection refused/reset, vote or ack timeout) is reported
//!   to the state machine as a failure: an undecided transaction aborts,
//!   and surviving participants receive abort decisions. On the instance
//!   side, a coordinator connection that dies leaving prepared branches
//!   behind triggers the same rule (see `server.rs`): the branches roll
//!   back, locks release, and the instance stays serviceable.
//!
//! The coordinator's forced decision log lives in the coordinator process
//! (`Deployment::decided`); `islands_dtxn::recovery` holds the rule a
//! restarted participant applies against it, tested in that crate. What
//! this module adds is the *live* half: no process exits with in-doubt
//! transactions still holding locks, which the instance processes verify
//! themselves at drain (nonzero exit + `in_doubt` count in their final
//! stats line).

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use islands_core::native::{
    EngineMode, ExecutorConfig, PartitionConfig, PartitionEngine, PartitionExecutor, TpccPartition,
};
use islands_core::partition::{warehouse_range, SiteMap, WarehouseSites};
use islands_core::plan::MICRO_TABLE;
use islands_dtxn::{Action, Coordinator, DecisionLog, Vote};
use islands_hwtopo::{island_cpu_lists, HostTopology};
use islands_workload::{PlanBranch, PlanRequest, TxnBranch, TxnRequest};

use crate::client::Client;
use crate::server::{Backend, Conn, Endpoint, Server, ServerConfig};
use crate::wire::{FrameReader, Reply, Request, WireMessage};

/// First argument that turns a host binary into an instance child (see
/// [`run_instance_child_if_requested`]).
pub const INSTANCE_CHILD_FLAG: &str = "--instance-child";

/// How instance processes are started.
#[derive(Debug, Clone)]
pub enum SpawnMode {
    /// Re-execute the current binary with [`INSTANCE_CHILD_FLAG`]; the host
    /// binary must call [`run_instance_child_if_requested`] first thing in
    /// `main`. One binary, zero path discovery.
    SelfExec,
    /// Run this binary (e.g. a built `islands-instance`). It is passed
    /// [`INSTANCE_CHILD_FLAG`] too, so the same arg parser serves both.
    Binary(PathBuf),
}

/// Where the deployment's endpoints live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Unix domain sockets in [`DeployConfig::socket_dir`].
    Uds,
    /// Loopback TCP on ephemeral ports.
    Tcp,
}

/// What data the instance processes load and serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployWorkload {
    /// The single-table microbenchmark: `total_rows` keys range-partitioned
    /// evenly across instances.
    Micro,
    /// TPC-C-lite: warehouses (with their districts, customers, and stock)
    /// partitioned contiguously across instances via
    /// [`warehouse_range`]; NewOrder runs local, remote-warehouse Payments
    /// run wire-level 2PC.
    Tpcc {
        /// Scale factor: number of warehouses across the whole deployment.
        warehouses: u64,
    },
}

/// Configuration for a multi-process deployment.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Number of instance processes (1 = "1ISL", machine-count = islands,
    /// core-count = fine-grained).
    pub instances: usize,
    pub transport: Transport,
    /// Total rows, range-partitioned evenly across instances.
    pub total_rows: u64,
    /// Payload bytes per row.
    pub row_size: usize,
    /// Server-side retry budget for local submissions, and the
    /// coordinator's retry budget for multisite 2PC aborts.
    pub retry_limit: u32,
    /// Per-instance lock wait budget (also breaks distributed deadlocks).
    pub lock_timeout: Duration,
    /// Run instances without locking (only sound for one client).
    pub single_threaded: bool,
    /// How each instance executes: [`EngineMode::Locked`] (sessions execute
    /// inline under 2PL) or [`EngineMode::Serial`] (one pinned executor
    /// thread per partition, no lock table on the local fast path).
    pub engine: EngineMode,
    /// Pin instance processes to island core sets via `taskset`.
    pub pin: bool,
    pub spawn: SpawnMode,
    /// How long the coordinator waits for a vote or ack before presuming
    /// the participant failed. Must comfortably exceed `lock_timeout`.
    pub vote_timeout: Duration,
    /// Directory for UDS socket files (default: the OS temp dir).
    pub socket_dir: Option<PathBuf>,
    /// Period of the `STATS` heartbeat each instance prints on stdout
    /// (0 disables). The parent only drains child stdout at shutdown, so
    /// the pipe's capacity bounds how long a run can heartbeat before the
    /// child would block on a full pipe — at the 500 ms default and ~100
    /// bytes a line, comfortably over five minutes.
    pub stats_every_ms: u64,
    /// Run instances with the observability registry enabled. Disabling it
    /// (`loadgen --no-obs`) turns every counter/span into a load-and-branch
    /// for overhead A/B measurements; heartbeats and final stats still
    /// print (wire counters are always on).
    pub obs: bool,
    /// What the instances load and serve (micro table or TPC-C-lite).
    pub workload: DeployWorkload,
    /// Directory for durable state, or `None` for a volatile deployment.
    /// When set, each instance writes a WAL (`instance-<i>.wal`) it replays
    /// on restart, the coordinator forces commit decisions to
    /// `coordinator.decisions` before any `Decision` frame leaves, and a
    /// resolver socket answers a recovering instance's
    /// [`Request::ResolveGtid`] queries from that log (unknown gtid ⇒
    /// presumed abort).
    pub wal_dir: Option<PathBuf>,
}

impl DeployConfig {
    /// Check that the configuration describes a spawnable deployment.
    ///
    /// In particular `total_rows >= instances`: with fewer rows than
    /// instances the even range partitioning degenerates (instances whose
    /// range is empty), which is exactly the shape under which ownership
    /// arithmetic divergence bugs hide. Reject it before any process spawns.
    pub fn validate(&self) -> Result<(), String> {
        if self.instances == 0 {
            return Err("a deployment needs at least one instance".into());
        }
        if self.total_rows < self.instances as u64 {
            return Err(format!(
                "{} rows cannot partition across {} instances (need rows >= instances)",
                self.total_rows, self.instances
            ));
        }
        if self.row_size == 0 {
            return Err("row_size must be nonzero".into());
        }
        if self.vote_timeout <= self.lock_timeout {
            return Err(format!(
                "vote_timeout ({:?}) must exceed lock_timeout ({:?}) or every \
                 lock-contended vote is presumed dead",
                self.vote_timeout, self.lock_timeout
            ));
        }
        if let DeployWorkload::Tpcc { warehouses } = self.workload {
            if warehouses < self.instances as u64 {
                return Err(format!(
                    "{warehouses} warehouses cannot partition across {} instances \
                     (need warehouses >= instances)",
                    self.instances
                ));
            }
        }
        Ok(())
    }
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            instances: 4,
            transport: Transport::Uds,
            total_rows: 40_000,
            row_size: 64,
            retry_limit: 64,
            lock_timeout: Duration::from_millis(200),
            single_threaded: false,
            engine: EngineMode::Locked,
            pin: true,
            spawn: SpawnMode::SelfExec,
            vote_timeout: Duration::from_secs(5),
            socket_dir: None,
            stats_every_ms: 500,
            obs: true,
            workload: DeployWorkload::Micro,
            wal_dir: None,
        }
    }
}

/// Rows per instance under the even range partitioning — the **single**
/// source of truth both [`range_of`] and [`owner_of`] divide by. The two
/// used to clamp differently (`owner_of` had a `.max(1)` that `range_of`
/// lacked), so with `rows < instances` keys routed to instances whose
/// loaded range was the empty `[0, 0)`; [`DeployConfig::validate`] now
/// rejects that shape outright and the clamp is gone.
fn rows_per_instance(rows: u64, instances: usize) -> u64 {
    debug_assert!(instances >= 1);
    debug_assert!(
        rows >= instances as u64,
        "{rows} rows cannot partition across {instances} instances"
    );
    rows / instances as u64
}

/// Key range `[lo, hi)` of instance `i` among `n` over `rows` (the same
/// arithmetic as the generator's logical sites).
fn range_of(i: usize, n: usize, rows: u64) -> (u64, u64) {
    let per = rows_per_instance(rows, n);
    let lo = i as u64 * per;
    let hi = if i + 1 == n { rows } else { lo + per };
    (lo, hi)
}

/// The instance owning `key` under the even range partitioning of
/// [`range_of`].
fn owner_of(key: u64, instances: usize, total_rows: u64) -> usize {
    let per = rows_per_instance(total_rows, instances);
    ((key / per) as usize).min(instances - 1)
}

/// Split a multisite request into per-instance branches, preserving key
/// order within each branch. Returns `(participants-in-first-touch-order,
/// branch-per-participant)`.
pub fn split_by_owner(
    req: &TxnRequest,
    instances: usize,
    total_rows: u64,
) -> (Vec<usize>, HashMap<usize, TxnRequest>) {
    let mut order = Vec::new();
    let mut branches: HashMap<usize, TxnRequest> = HashMap::new();
    for &key in &req.keys {
        let owner = owner_of(key, instances, total_rows);
        let branch = branches.entry(owner).or_insert_with(|| {
            order.push(owner);
            TxnRequest {
                kind: req.kind,
                keys: Vec::new(),
                multisite: true,
            }
        });
        branch.keys.push(key);
    }
    (order, branches)
}

/// Split a multi-step plan into per-instance branches, preserving step
/// order within each branch (`owner` maps `(table, key)` to an instance —
/// see [`Deployment::owner_of_step`]). Branches keep the plan's class and
/// are marked multisite, so a parked remote-Payment branch records its
/// class in each participant's stats.
pub fn split_plan_by_owner<F: Fn(u32, u64) -> usize>(
    plan: &PlanRequest,
    owner: F,
) -> (Vec<usize>, HashMap<usize, PlanRequest>) {
    let mut order = Vec::new();
    let mut branches: HashMap<usize, PlanRequest> = HashMap::new();
    for step in &plan.steps {
        let inst = owner(step.table, step.key);
        let branch = branches.entry(inst).or_insert_with(|| {
            order.push(inst);
            PlanRequest {
                class: plan.class,
                multisite: true,
                steps: Vec::new(),
            }
        });
        branch.steps.push(*step);
    }
    (order, branches)
}

/// Final counters one instance printed at drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceStats {
    pub commits: u64,
    pub aborts: u64,
    pub errors: u64,
    pub prepares: u64,
    pub decisions: u64,
    pub presumed_aborts: u64,
    pub in_doubt: u64,
}

fn parse_stats(line: &str) -> Option<InstanceStats> {
    let rest = line.strip_prefix("STATS ")?;
    let mut s = InstanceStats::default();
    for pair in rest.split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        let v: u64 = v.parse().ok()?;
        match k {
            "commits" => s.commits = v,
            "aborts" => s.aborts = v,
            "errors" => s.errors = v,
            "prepares" => s.prepares = v,
            "decisions" => s.decisions = v,
            "presumed_aborts" => s.presumed_aborts = v,
            "in_doubt" => s.in_doubt = v,
            // Unknown keys are skipped, not fatal: a newer child may
            // heartbeat fields an older parent has no slot for.
            _ => {}
        }
    }
    Some(s)
}

fn format_stats(s: &crate::server::ServerStats) -> String {
    format!(
        "STATS commits={} aborts={} errors={} prepares={} decisions={} \
         presumed_aborts={} in_doubt={}",
        s.commits, s.aborts, s.errors, s.prepares, s.decisions, s.presumed_aborts, s.in_doubt,
    )
}

/// How one instance process ended.
#[derive(Debug)]
pub struct InstanceExit {
    pub index: usize,
    /// Drained on request, exited zero, and reported zero in-doubt
    /// transactions.
    pub clean: bool,
    /// Final counters, when the instance lived long enough to print them.
    pub stats: Option<InstanceStats>,
    /// Human-readable detail for unclean exits.
    pub detail: String,
}

/// The coordinator's decision verdicts: an in-memory gtid → commit map,
/// optionally written through a durable [`DecisionLog`] *before* any
/// `Decision` frame leaves the coordinator. Resolution queries apply the
/// presumed-abort rule: no record means abort.
struct DecisionStore {
    decided: Mutex<HashMap<u64, bool>>,
    log: Option<DecisionLog>,
}

impl DecisionStore {
    /// Volatile store, or (with a wal dir) one backed by
    /// `<wal_dir>/coordinator.decisions` — reopening over an existing log
    /// resumes its verdicts, which is what lets a restarted deployment keep
    /// answering for transactions it decided in a previous life.
    fn open(wal_dir: Option<&Path>) -> io::Result<DecisionStore> {
        match wal_dir {
            None => Ok(DecisionStore {
                decided: Mutex::new(HashMap::new()),
                log: None,
            }),
            Some(dir) => {
                let log = DecisionLog::open(&dir.join("coordinator.decisions"))?;
                Ok(DecisionStore {
                    decided: Mutex::new(log.decisions()),
                    log: Some(log),
                })
            }
        }
    }

    /// Durably record a decision. Fail-stop on a log write error: acting on
    /// an unforced commit would let a coordinator crash contradict it, which
    /// is the one thing presumed abort must never allow.
    fn force(&self, gtid: u64, commit: bool) {
        if let Some(log) = &self.log {
            if let Err(e) = log.force(gtid, commit) {
                panic!("coordinator decision log write failed: {e}");
            }
        }
        lock_clean(&self.decided).insert(gtid, commit);
    }

    /// The presumed-abort verdict for one gtid: commit only if a commit
    /// decision was forced.
    fn commit_verdict(&self, gtid: u64) -> bool {
        lock_clean(&self.decided)
            .get(&gtid)
            .copied()
            .unwrap_or(false)
    }

    fn decided_count(&self) -> u64 {
        lock_clean(&self.decided).len() as u64
    }
}

/// The coordinator-side resolver: a UDS listener answering
/// [`Request::ResolveGtid`] frames from the decision store, so a restarted
/// instance can settle the in-doubt branches its WAL replay parked. One
/// thread per connection; connections are rare (instance startups only).
struct Resolver {
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Resolver {
    fn spawn(socket: PathBuf, store: Arc<DecisionStore>) -> io::Result<Resolver> {
        let _ = std::fs::remove_file(&socket);
        let listener = UnixListener::bind(&socket)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("islands-resolver".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let store = Arc::clone(&store);
                                let shutdown = Arc::clone(&shutdown);
                                let _ = std::thread::Builder::new()
                                    .name("islands-resolver-conn".into())
                                    .spawn(move || {
                                        let _ = resolver_session(stream, &store, &shutdown);
                                    });
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                })?
        };
        Ok(Resolver {
            endpoint: Endpoint::Uds(socket),
            shutdown,
            acceptor: Some(acceptor),
        })
    }
}

impl Drop for Resolver {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        remove_uds_file(&self.endpoint);
    }
}

/// Serve one resolver connection until EOF: `ResolveGtid` frames answered
/// with `Resolved` verdicts, `Ping` with `Pong`; anything else is an error
/// reply (the resolver is not an instance server).
fn resolver_session(
    stream: std::os::unix::net::UnixStream,
    store: &DecisionStore,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut conn = Conn::Uds(stream);
    let mut reader = FrameReader::new();
    let mut out = Vec::new();
    loop {
        out.clear();
        loop {
            match reader.next_message::<Request>() {
                Ok(Some(Request::ResolveGtid { gtid })) => Reply::Resolved {
                    gtid,
                    commit: store.commit_verdict(gtid),
                }
                .encode_frame(&mut out),
                Ok(Some(Request::Ping)) => Reply::Pong.encode_frame(&mut out),
                Ok(Some(other)) => Reply::Error {
                    message: format!("resolver answers only ResolveGtid, got {other:?}"),
                }
                .encode_frame(&mut out),
                Ok(None) => break,
                Err(e) => {
                    Reply::Error {
                        message: format!("protocol error: {e}"),
                    }
                    .encode_frame(&mut out);
                    conn.write_all(&out)?;
                    return Ok(());
                }
            }
        }
        if !out.is_empty() {
            conn.write_all(&out)?;
            conn.flush()?;
        }
        match reader.fill_from(&mut conn) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Where in the 2PC exchange a scripted fault kills its victim (always
/// relative to the victim's own frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Before the victim's `Prepare` frame is sent: nothing durable exists
    /// on the victim; the transaction presumed-aborts.
    PrePrepare,
    /// After the victim voted Yes (its prepared branch is durable in its
    /// WAL), before its `Decision` frame is sent — the canonical in-doubt
    /// window.
    PostPreparePreDecision,
    /// After the victim's `Decision` frame was written, before its ack is
    /// read.
    PostDecisionPreAck,
}

impl FaultPoint {
    /// Parse the CLI spelling (`pre-prepare`, `post-prepare`,
    /// `post-decision`).
    pub fn parse(s: &str) -> Result<FaultPoint, String> {
        match s {
            "pre-prepare" => Ok(FaultPoint::PrePrepare),
            "post-prepare" => Ok(FaultPoint::PostPreparePreDecision),
            "post-decision" => Ok(FaultPoint::PostDecisionPreAck),
            other => Err(format!(
                "fault point must be pre-prepare, post-prepare, or post-decision; got {other}"
            )),
        }
    }

    /// The CLI spelling back (round-trips with [`parse`](Self::parse)).
    pub fn label(&self) -> &'static str {
        match self {
            FaultPoint::PrePrepare => "pre-prepare",
            FaultPoint::PostPreparePreDecision => "post-prepare",
            FaultPoint::PostDecisionPreAck => "post-decision",
        }
    }
}

/// One scripted fault: SIGKILL `victim` the next time the coordinator
/// reaches `point` in a 2PC exchange involving it. Armed once via
/// [`Deployment::arm_fault`]; fires at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    pub point: FaultPoint,
    pub victim: usize,
}

struct Member {
    endpoint: Mutex<Endpoint>,
    range: (u64, u64),
    cpus: Option<String>,
    /// Child argv (after the executable), kept verbatim so
    /// [`Deployment::restart_instance`] respawns the same instance — same
    /// key range, same WAL path, same pins.
    args: Vec<String>,
    child: Mutex<Child>,
    stdout: Mutex<BufReader<ChildStdout>>,
}

/// A running multi-process deployment. Dropping it kills every child that
/// [`shutdown`](Self::shutdown) has not already reaped.
pub struct Deployment {
    members: Vec<Member>,
    exe: PathBuf,
    total_rows: u64,
    workload: DeployWorkload,
    retry_limit: u32,
    vote_timeout: Duration,
    /// Reply deadline for plain submissions: unlike a vote (one execution
    /// attempt), a submit may legitimately burn the instance's whole
    /// retry × lock-wait budget before answering, so "wedged" starts after
    /// that budget plus the vote timeout.
    submit_timeout: Duration,
    pinned: bool,
    next_gtid: AtomicU64,
    /// Coordinator-observed presumed aborts (participant unreachable or
    /// timed out mid-protocol).
    presumed_aborts: AtomicU64,
    /// The coordinator's forced decision log: gtid → commit. Presumed abort
    /// forces commits only, so this holds every committed gtid and nothing
    /// else. With [`DeployConfig::wal_dir`] set it is written through a
    /// durable [`DecisionLog`]; `islands_dtxn::recovery::resolve_in_doubt`
    /// is the rule participants apply against it.
    decisions: Arc<DecisionStore>,
    /// The resolver socket answering recovering instances (wal deployments
    /// only). Dropped last-ish: children are killed first in both shutdown
    /// paths, so nothing is left asking.
    resolver: Option<Resolver>,
    /// A scripted fault waiting to fire (see [`FaultPlan`]).
    fault: Mutex<Option<FaultPlan>>,
    faults_fired: AtomicU64,
}

impl Deployment {
    /// Spawn `cfg.instances` pinned instance processes and wait for each to
    /// report readiness. On any failure the already-spawned children are
    /// killed before the error returns.
    pub fn spawn(cfg: &DeployConfig) -> io::Result<Deployment> {
        cfg.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let exe = match &cfg.spawn {
            SpawnMode::SelfExec => std::env::current_exe()?,
            SpawnMode::Binary(p) => p.clone(),
        };
        // Pinning needs both the request and the tool; when either is
        // missing, report no cpu sets at all rather than a plan that was
        // never applied.
        let taskset = cfg.pin && taskset_available();
        let pins = if taskset {
            island_pin_sets(cfg.instances)
        } else {
            vec![None; cfg.instances]
        };
        let socket_dir = cfg.socket_dir.clone().unwrap_or_else(std::env::temp_dir);
        // Socket names carry a per-process sequence number on top of the
        // pid: concurrent Deployments in one process (parallel tests) must
        // not race for the same paths.
        static DEPLOY_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = DEPLOY_SEQ.fetch_add(1, Ordering::Relaxed);

        // Durable half: the coordinator's decision log and its resolver
        // socket come up before any child spawns, so a child that restarts
        // into recovery always finds someone to ask.
        if let Some(dir) = &cfg.wal_dir {
            std::fs::create_dir_all(dir)?;
        }
        let decisions = Arc::new(DecisionStore::open(cfg.wal_dir.as_deref())?);
        let resolver = match &cfg.wal_dir {
            Some(_) => Some(Resolver::spawn(
                socket_dir.join(format!("islands-coord-{}-{seq}.sock", std::process::id())),
                Arc::clone(&decisions),
            )?),
            None => None,
        };

        let child_args = |i: usize, range: (u64, u64)| -> Vec<String> {
            let endpoint_spec = match cfg.transport {
                Transport::Uds => format!(
                    "uds:{}",
                    socket_dir
                        .join(format!(
                            "islands-inst-{}-{seq}-{i}.sock",
                            std::process::id()
                        ))
                        .display()
                ),
                Transport::Tcp => "tcp:127.0.0.1:0".to_string(),
            };
            let mut args = vec![
                INSTANCE_CHILD_FLAG.to_string(),
                "--endpoint".into(),
                endpoint_spec,
                "--row-size".into(),
                cfg.row_size.to_string(),
                "--retry-limit".into(),
                cfg.retry_limit.to_string(),
                "--lock-ms".into(),
                cfg.lock_timeout.as_millis().to_string(),
                "--stats-every-ms".into(),
                cfg.stats_every_ms.to_string(),
            ];
            match cfg.workload {
                DeployWorkload::Micro => {
                    args.extend(["--lo".into(), range.0.to_string()]);
                    args.extend(["--hi".into(), range.1.to_string()]);
                }
                DeployWorkload::Tpcc { warehouses } => {
                    args.extend(["--warehouses".into(), warehouses.to_string()]);
                    args.extend(["--w-lo".into(), range.0.to_string()]);
                    args.extend(["--w-hi".into(), range.1.to_string()]);
                }
            }
            if let Some(dir) = &cfg.wal_dir {
                args.extend([
                    "--wal".into(),
                    dir.join(format!("instance-{i}.wal")).display().to_string(),
                ]);
            }
            if let Some(r) = &resolver {
                args.extend(["--coord".into(), r.endpoint.to_string()]);
            }
            if cfg.single_threaded {
                args.push("--single-threaded".into());
            }
            if !cfg.obs {
                args.push("--no-obs".into());
            }
            if cfg.engine == EngineMode::Serial {
                args.extend(["--engine".into(), EngineMode::Serial.label().into()]);
                // The child's executor thread re-pins itself to the same
                // island list the process is wrapped in (keeps the pin if
                // something else in the child widens the process mask).
                if let (true, Some(cpus)) = (taskset, &pins[i]) {
                    args.extend(["--pin-cpus".into(), cpus.clone()]);
                }
            }
            args
        };

        let mut spawned: Vec<Member> = Vec::new();
        for (i, pin) in pins.iter().enumerate().take(cfg.instances) {
            // In TPC-C mode the "range" a member reports is its warehouse
            // range; the micro row range flags are still passed (the child
            // ignores them once --warehouses is set).
            let range = match cfg.workload {
                DeployWorkload::Micro => range_of(i, cfg.instances, cfg.total_rows),
                DeployWorkload::Tpcc { warehouses } => {
                    warehouse_range(warehouses, cfg.instances, i)
                }
            };
            let args = child_args(i, range);
            let cpus = if taskset { pin.clone() } else { None };
            match spawn_child(&exe, cpus.as_deref(), &args) {
                Ok((child, stdout)) => spawned.push(Member {
                    endpoint: Mutex::new(Endpoint::Uds(PathBuf::new())), // patched after READY
                    range,
                    cpus: pin.clone(),
                    args,
                    child: Mutex::new(child),
                    stdout: Mutex::new(stdout),
                }),
                Err(e) => {
                    for m in &spawned {
                        let mut c = lock_clean(&m.child);
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    return Err(io::Error::other(format!("spawn instance {i}: {e}")));
                }
            }
        }

        // Collect READY lines (children bind and load in parallel above).
        let mut members = Vec::with_capacity(spawned.len());
        let mut failure: Option<String> = None;
        for (i, member) in spawned.drain(..).enumerate() {
            if failure.is_none() {
                let ready = {
                    let mut stdout = lock_clean(&member.stdout);
                    let mut child = lock_clean(&member.child);
                    read_ready(&mut stdout, &mut child)
                };
                match ready {
                    Ok(endpoint) => {
                        *lock_clean(&member.endpoint) = endpoint;
                        members.push(member);
                        continue;
                    }
                    Err(e) => failure = Some(format!("instance {i} never became ready: {e}")),
                }
            }
            let mut c = lock_clean(&member.child);
            let _ = c.kill();
            let _ = c.wait();
        }
        if let Some(msg) = failure {
            for m in &members {
                let mut c = lock_clean(&m.child);
                let _ = c.kill();
                let _ = c.wait();
            }
            return Err(io::Error::other(msg));
        }
        Ok(Deployment {
            members,
            exe,
            total_rows: cfg.total_rows,
            workload: cfg.workload,
            retry_limit: cfg.retry_limit,
            vote_timeout: cfg.vote_timeout,
            submit_timeout: cfg.vote_timeout + cfg.lock_timeout * (cfg.retry_limit + 1),
            pinned: taskset,
            next_gtid: AtomicU64::new(1),
            presumed_aborts: AtomicU64::new(0),
            decisions,
            resolver,
            fault: Mutex::new(None),
            faults_fired: AtomicU64::new(0),
        })
    }

    pub fn instances(&self) -> usize {
        self.members.len()
    }

    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Whether children were actually wrapped in `taskset`.
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// The cpu list instance `i` was pinned to, if any.
    pub fn cpus_of(&self, i: usize) -> Option<&str> {
        self.members[i].cpus.as_deref()
    }

    /// The endpoint instance `i` listens on. A clone, not a reference: a
    /// concurrent [`restart_instance`](Self::restart_instance) may swap the
    /// live endpoint (TCP children re-bind an ephemeral port).
    pub fn endpoint(&self, i: usize) -> Endpoint {
        lock_clean(&self.members[i].endpoint).clone()
    }

    /// The resolver socket recovering instances query, when this deployment
    /// has one ([`DeployConfig::wal_dir`] set).
    pub fn resolver_endpoint(&self) -> Option<Endpoint> {
        self.resolver.as_ref().map(|r| r.endpoint.clone())
    }

    /// The key range instance `i` owns.
    pub fn range(&self, i: usize) -> (u64, u64) {
        self.members[i].range
    }

    /// The instance owning `key`.
    pub fn owner_of(&self, key: u64) -> usize {
        owner_of(key, self.members.len(), self.total_rows)
    }

    /// What the instances are loaded with.
    pub fn workload(&self) -> DeployWorkload {
        self.workload
    }

    /// The instance owning `(table, key)` under the deployment's workload:
    /// micro keys by row range, TPC-C keys by their warehouse (via the same
    /// proportional map [`warehouse_range`] inverts for loading).
    pub fn owner_of_step(&self, table: u32, key: u64) -> usize {
        match self.workload {
            DeployWorkload::Micro => {
                debug_assert_eq!(table, MICRO_TABLE);
                self.owner_of(key)
            }
            DeployWorkload::Tpcc { warehouses } => WarehouseSites {
                warehouses,
                n_sites: self.members.len(),
            }
            .site_of(table, key),
        }
    }

    fn next_gtid(&self) -> u64 {
        self.next_gtid.fetch_add(1, Ordering::Relaxed)
    }

    /// Coordinator-observed presumed aborts so far.
    pub fn presumed_aborts(&self) -> u64 {
        self.presumed_aborts.load(Ordering::Relaxed)
    }

    /// Number of commit decisions forced to the coordinator log.
    pub fn decided_commits(&self) -> u64 {
        self.decisions.decided_count()
    }

    /// Arm a scripted fault: the next 2PC exchange that reaches
    /// `plan.point` with `plan.victim` as a participant SIGKILLs the victim
    /// at exactly that point. One-shot; re-arm for another fault.
    pub fn arm_fault(&self, plan: FaultPlan) {
        *lock_clean(&self.fault) = Some(plan);
    }

    /// How many scripted faults have fired.
    pub fn faults_fired(&self) -> u64 {
        self.faults_fired.load(Ordering::Relaxed)
    }

    fn maybe_fire_fault(&self, point: FaultPoint, to: usize) {
        let fire = {
            let mut armed = lock_clean(&self.fault);
            match *armed {
                Some(plan) if plan.point == point && plan.victim == to => {
                    *armed = None;
                    true
                }
                _ => false,
            }
        };
        if fire {
            let _ = self.kill_instance(to);
            self.faults_fired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Open one coordinator connection set (one socket per instance).
    /// Each client thread should hold its own.
    pub fn client(self: &Arc<Self>) -> io::Result<DeployClient> {
        let mut conns = Vec::with_capacity(self.members.len());
        for m in &self.members {
            let endpoint = lock_clean(&m.endpoint).clone();
            conns.push(Some(Client::connect_with_retry(
                &endpoint,
                Duration::from_secs(2),
            )?));
        }
        Ok(DeployClient {
            deploy: Arc::clone(self),
            conns,
        })
    }

    /// SIGKILL instance `i` (no drain, no cleanup) — the fault injector's
    /// hammer, also usable directly from tests to exercise the
    /// presumed-abort paths.
    pub fn kill_instance(&self, i: usize) -> io::Result<()> {
        let mut child = lock_clean(&self.members[i].child);
        child.kill()?;
        child.wait()?;
        Ok(())
    }

    /// Respawn instance `i` on its original key range, WAL path, and pins,
    /// and wait for it to report READY. The stale socket file a killed
    /// child leaves behind is removed first — the replacement must bind
    /// fresh, not inherit a path some client still holds a dead connection
    /// to. On a WAL deployment the child replays its log before READY, so
    /// when this returns, its surviving in-doubt branches are already
    /// resolved against the coordinator's decision log.
    pub fn restart_instance(&self, i: usize) -> io::Result<()> {
        let m = &self.members[i];
        {
            // Make sure the old incarnation is dead and reaped before its
            // replacement binds (idempotent after kill_instance).
            let mut child = lock_clean(&m.child);
            let _ = child.kill();
            let _ = child.wait();
        }
        remove_uds_file(&lock_clean(&m.endpoint).clone());
        let cpus = if self.pinned { m.cpus.as_deref() } else { None };
        let (mut child, mut stdout) = spawn_child(&self.exe, cpus, &m.args)?;
        match read_ready(&mut stdout, &mut child) {
            Ok(endpoint) => {
                *lock_clean(&m.endpoint) = endpoint;
                *lock_clean(&m.child) = child;
                *lock_clean(&m.stdout) = stdout;
                Ok(())
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(io::Error::other(format!(
                    "instance {i} never became ready after restart: {e}"
                )))
            }
        }
    }

    /// Drain every instance, wait for the processes to exit, and report how
    /// each ended. An instance is `clean` iff it acknowledged the drain,
    /// exited zero, and reported zero in-doubt transactions.
    pub fn shutdown(mut self) -> Vec<InstanceExit> {
        let members = std::mem::take(&mut self.members);
        let mut reports = Vec::with_capacity(members.len());
        for (i, member) in members.into_iter().enumerate() {
            let mut detail = String::new();
            let endpoint = unwrap_clean(member.endpoint);
            let drained = match Client::connect(&endpoint).and_then(|mut c| c.drain_server()) {
                Ok(()) => true,
                Err(e) => {
                    detail = format!("drain failed: {e}");
                    false
                }
            };
            let mut child = unwrap_clean(member.child);
            let status = match wait_with_timeout(&mut child, Duration::from_secs(10)) {
                Ok(status) => Some(status),
                Err(e) => {
                    detail = format!("{detail}; wait failed: {e}");
                    let _ = child.kill();
                    let _ = child.wait();
                    None
                }
            };
            // The child has exited (or been killed): its stdout is at EOF,
            // so drain the remaining lines and keep the *last* STATS record.
            // With heartbeats on, many STATS lines precede it; the final one
            // (printed after the server joins) carries the drained totals,
            // and a killed child's newest heartbeat is the best estimate.
            let mut stats = None;
            let mut stdout = unwrap_clean(member.stdout);
            let mut line = String::new();
            while let Ok(n) = stdout.read_line(&mut line) {
                if n == 0 {
                    break;
                }
                if let Some(s) = parse_stats(line.trim_end()) {
                    stats = Some(s);
                }
                line.clear();
            }
            let exited_zero = status.map(|s| s.success()).unwrap_or(false);
            let no_leak = stats.map(|s| s.in_doubt == 0).unwrap_or(false);
            if !exited_zero {
                detail = format!("{detail}; exit status {status:?}");
            }
            if stats.is_none() {
                detail = format!("{detail}; no STATS line");
            } else if !no_leak {
                detail = format!("{detail}; leaked in-doubt transactions");
            }
            let clean = drained && exited_zero && no_leak;
            // Unclean exits name the instance in the detail itself: callers
            // routinely collect `detail`s from every member into one error
            // string, where "drain failed" without an index is useless.
            if !clean {
                detail = format!("instance {i}: {}", detail.trim_start_matches("; "));
            }
            // A cleanly drained child unlinks its own socket file; a killed
            // one cannot, so the parent (which chose the path) sweeps up.
            remove_uds_file(&endpoint);
            reports.push(InstanceExit {
                index: i,
                clean,
                stats,
                detail: detail.trim_start_matches("; ").to_string(),
            });
        }
        reports
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        // Anything shutdown() did not reap dies here: no orphan processes,
        // no stale socket files.
        for m in &self.members {
            let mut c = lock_clean(&m.child);
            let _ = c.kill();
            let _ = c.wait();
            remove_uds_file(&lock_clean(&m.endpoint));
        }
        // The resolver field drops after this body: children are dead by
        // then, so nothing is left mid-query.
    }
}

/// The mutexes in this module guard a `Child`, a `BufReader`, or the
/// decision map — state that stays consistent across a holder's panic
/// (kill/wait/read/insert are self-contained) — so recover the guard from
/// poisoning instead of cascading the panic into cleanup paths like `Drop`.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Same recovery for consuming the mutex at shutdown.
fn unwrap_clean<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(|e| e.into_inner())
}

fn remove_uds_file(endpoint: &Endpoint) {
    if let Endpoint::Uds(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> io::Result<std::process::ExitStatus> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(status);
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "instance did not exit after drain",
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Start one instance child (optionally wrapped in `taskset -c cpus`) with
/// its stdout piped for the READY/STATS protocol.
fn spawn_child(
    exe: &Path,
    cpus: Option<&str>,
    args: &[String],
) -> io::Result<(Child, BufReader<ChildStdout>)> {
    let mut cmd = match cpus {
        Some(cpus) => {
            let mut c = Command::new("taskset");
            c.arg("-c").arg(cpus).arg(exe);
            c
        }
        None => Command::new(exe),
    };
    cmd.args(args).stdin(Stdio::null()).stdout(Stdio::piped());
    let mut child = cmd.spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::other("child stdout was not piped"))?;
    Ok((child, BufReader::new(stdout)))
}

/// Block until the child prints its `READY <endpoint>` handshake line (or
/// dies, which surfaces its exit status).
fn read_ready(stdout: &mut BufReader<ChildStdout>, child: &mut Child) -> io::Result<Endpoint> {
    let mut line = String::new();
    loop {
        line.clear();
        if stdout.read_line(&mut line)? == 0 {
            let status = child
                .try_wait()?
                .map(|s| format!("exited {s}"))
                .unwrap_or_else(|| "stdout closed".into());
            return Err(io::Error::other(status));
        }
        if let Some(spec) = line.trim_end().strip_prefix("READY ") {
            return Endpoint::parse(spec).map_err(io::Error::other);
        }
    }
}

fn taskset_available() -> bool {
    Command::new("taskset")
        .arg("-V")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Island-style cpu lists for `n` instances on the detected host (see
/// [`islands_hwtopo::island_cpu_lists`], which the granularity sweep shares).
fn island_pin_sets(n: usize) -> Vec<Option<String>> {
    let topo = HostTopology::detect();
    island_cpu_lists(&topo, n).into_iter().map(Some).collect()
}

/// Outcome of one request submitted through a [`DeployClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployOutcome {
    pub committed: bool,
    /// Whether the request ran wire-level 2PC across instances.
    pub distributed: bool,
    /// Coordinator-side retry rounds (2PC aborts re-attempted).
    pub retries: u32,
    /// The abort was presumed after a participant failure rather than
    /// decided by votes.
    pub presumed_abort: bool,
}

/// What came back for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployReply {
    Outcome(DeployOutcome),
    /// A participant rejected the request as malformed/unsatisfiable.
    ServerError(String),
    /// The single owning instance is unreachable.
    InstanceDown(usize),
}

enum TwoPc {
    Commit,
    Abort,
    PresumedAbort,
    Error(String),
}

/// One coordinator: a connection to every instance plus the 2PC driver.
pub struct DeployClient {
    deploy: Arc<Deployment>,
    conns: Vec<Option<Client>>,
}

/// First pause of the reconnect backoff ladder.
const RECONNECT_BACKOFF_START: Duration = Duration::from_millis(1);
/// Per-attempt pause cap: the ladder doubles 1 → 2 → … → 64 ms, then stays.
const RECONNECT_BACKOFF_CAP: Duration = Duration::from_millis(64);
/// Default total reconnect budget per [`DeployClient::conn`] call — long
/// enough to ride out an instance respawn, short enough that a permanently
/// dead instance still surfaces as [`DeployReply::InstanceDown`] promptly.
const RECONNECT_BUDGET: Duration = Duration::from_secs(1);

/// Connect with capped exponential backoff: immediate first attempt, then
/// doubling pauses up to [`RECONNECT_BACKOFF_CAP`], giving up (with the
/// last error) once `budget` is spent.
fn connect_backoff(endpoint: &Endpoint, budget: Duration) -> io::Result<Client> {
    let deadline = Instant::now() + budget;
    let mut pause = RECONNECT_BACKOFF_START;
    loop {
        match Client::connect(endpoint) {
            Ok(c) => return Ok(c),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => {
                std::thread::sleep(pause);
                pause = (pause * 2).min(RECONNECT_BACKOFF_CAP);
            }
        }
    }
}

impl DeployClient {
    fn conn(&mut self, i: usize) -> io::Result<&mut Client> {
        if self.conns[i].is_none() {
            // Reconnect with backoff: a raced submit that lands while
            // instance `i` restarts rides out the respawn instead of
            // failing on the first refused connect.
            self.conns[i] = Some(connect_backoff(&self.deploy.endpoint(i), RECONNECT_BUDGET)?);
        }
        self.conns[i]
            .as_mut()
            .ok_or_else(|| io::Error::other("connection slot empty after connect"))
    }

    fn mark_dead(&mut self, i: usize) {
        self.conns[i] = None;
    }

    /// Route one request: single-site requests go straight to the owner,
    /// multisite requests run wire-level 2PC with this client as
    /// coordinator.
    pub fn submit(&mut self, req: &TxnRequest) -> io::Result<DeployReply> {
        let n = self.deploy.instances();
        let (order, branches) = split_by_owner(req, n, self.deploy.total_rows());
        if order.len() <= 1 {
            let target = order.first().copied().unwrap_or(0);
            return self.submit_single(target, req);
        }

        let mut retries = 0u32;
        loop {
            match self.try_2pc(&order, &branches)? {
                TwoPc::Commit => {
                    return Ok(DeployReply::Outcome(DeployOutcome {
                        committed: true,
                        distributed: true,
                        retries,
                        presumed_abort: false,
                    }))
                }
                TwoPc::Abort => {
                    if retries >= self.deploy.retry_limit {
                        return Ok(DeployReply::Outcome(DeployOutcome {
                            committed: false,
                            distributed: true,
                            retries,
                            presumed_abort: false,
                        }));
                    }
                    retries += 1;
                    std::thread::yield_now();
                }
                TwoPc::PresumedAbort => {
                    self.deploy.presumed_aborts.fetch_add(1, Ordering::Relaxed);
                    return Ok(DeployReply::Outcome(DeployOutcome {
                        committed: false,
                        distributed: true,
                        retries,
                        presumed_abort: true,
                    }));
                }
                TwoPc::Error(message) => return Ok(DeployReply::ServerError(message)),
            }
        }
    }

    fn submit_single(&mut self, target: usize, req: &TxnRequest) -> io::Result<DeployReply> {
        let Ok(conn) = self.conn(target) else {
            return Ok(DeployReply::InstanceDown(target));
        };
        if conn.send_request(&Request::Submit(req.clone())).is_err() {
            self.mark_dead(target);
            return Ok(DeployReply::InstanceDown(target));
        }
        let deadline = self.deploy.submit_timeout;
        match self.recv_deadline(target, deadline) {
            Ok(Reply::Committed {
                distributed,
                retries,
                ..
            }) => Ok(DeployReply::Outcome(DeployOutcome {
                committed: true,
                distributed,
                retries,
                presumed_abort: false,
            })),
            Ok(Reply::Aborted { retries }) => Ok(DeployReply::Outcome(DeployOutcome {
                committed: false,
                distributed: false,
                retries,
                presumed_abort: false,
            })),
            Ok(Reply::Error { message }) => Ok(DeployReply::ServerError(message)),
            Ok(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply to submit: {other:?}"),
            )),
            Err(_) => {
                self.mark_dead(target);
                Ok(DeployReply::InstanceDown(target))
            }
        }
    }

    /// Read a reply with the vote/ack deadline armed; any failure poisons
    /// the connection (a timed-out reply would desynchronize the stream).
    fn recv_timed(&mut self, i: usize) -> io::Result<Reply> {
        self.recv_deadline(i, self.deploy.vote_timeout)
    }

    fn recv_deadline(&mut self, i: usize, timeout: Duration) -> io::Result<Reply> {
        let conn = self.conns[i]
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "participant dead"))?;
        conn.set_read_timeout(Some(timeout))?;
        let reply = conn.recv_reply();
        if reply.is_ok() {
            conn.set_read_timeout(None)?;
        }
        reply
    }

    /// One round of wire-level 2PC for `gtid`'s branches.
    fn try_2pc(
        &mut self,
        parts: &[usize],
        branches: &HashMap<usize, TxnRequest>,
    ) -> io::Result<TwoPc> {
        let gtid = self.deploy.next_gtid();
        drive_2pc(self, gtid, parts, |gtid, to| {
            Request::Prepare(TxnBranch {
                gtid,
                req: branches[&to].clone(),
            })
        })
    }

    /// One round of wire-level 2PC for a plan's branches: the same driver,
    /// with `PreparePlan` frames carrying each participant's step list.
    fn try_2pc_plan(
        &mut self,
        parts: &[usize],
        branches: &HashMap<usize, PlanRequest>,
    ) -> io::Result<TwoPc> {
        let gtid = self.deploy.next_gtid();
        drive_2pc(self, gtid, parts, |gtid, to| {
            Request::PreparePlan(PlanBranch {
                gtid,
                plan: branches[&to].clone(),
            })
        })
    }

    /// Route one multi-step plan: single-instance plans go straight to the
    /// owner as a `SubmitPlan` frame; plans spanning instances (remote-
    /// warehouse Payments) run wire-level 2PC with `PreparePlan` branches.
    pub fn submit_plan(&mut self, plan: &PlanRequest) -> io::Result<DeployReply> {
        let deploy = Arc::clone(&self.deploy);
        let (order, branches) = split_plan_by_owner(plan, |t, k| deploy.owner_of_step(t, k));
        if order.len() <= 1 {
            let target = order.first().copied().unwrap_or(0);
            return self.submit_plan_single(target, plan);
        }

        let mut retries = 0u32;
        loop {
            match self.try_2pc_plan(&order, &branches)? {
                TwoPc::Commit => {
                    return Ok(DeployReply::Outcome(DeployOutcome {
                        committed: true,
                        distributed: true,
                        retries,
                        presumed_abort: false,
                    }))
                }
                TwoPc::Abort => {
                    if retries >= self.deploy.retry_limit {
                        return Ok(DeployReply::Outcome(DeployOutcome {
                            committed: false,
                            distributed: true,
                            retries,
                            presumed_abort: false,
                        }));
                    }
                    retries += 1;
                    std::thread::yield_now();
                }
                TwoPc::PresumedAbort => {
                    self.deploy.presumed_aborts.fetch_add(1, Ordering::Relaxed);
                    return Ok(DeployReply::Outcome(DeployOutcome {
                        committed: false,
                        distributed: true,
                        retries,
                        presumed_abort: true,
                    }));
                }
                TwoPc::Error(message) => return Ok(DeployReply::ServerError(message)),
            }
        }
    }

    fn submit_plan_single(&mut self, target: usize, plan: &PlanRequest) -> io::Result<DeployReply> {
        let Ok(conn) = self.conn(target) else {
            return Ok(DeployReply::InstanceDown(target));
        };
        if conn
            .send_request(&Request::SubmitPlan(plan.clone()))
            .is_err()
        {
            self.mark_dead(target);
            return Ok(DeployReply::InstanceDown(target));
        }
        let deadline = self.deploy.submit_timeout;
        match self.recv_deadline(target, deadline) {
            Ok(Reply::Committed {
                distributed,
                retries,
                ..
            }) => Ok(DeployReply::Outcome(DeployOutcome {
                committed: true,
                distributed,
                retries,
                presumed_abort: false,
            })),
            Ok(Reply::Aborted { retries }) => Ok(DeployReply::Outcome(DeployOutcome {
                committed: false,
                distributed: false,
                retries,
                presumed_abort: false,
            })),
            Ok(Reply::Error { message }) => Ok(DeployReply::ServerError(message)),
            Ok(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply to submit_plan: {other:?}"),
            )),
            Err(_) => {
                self.mark_dead(target);
                Ok(DeployReply::InstanceDown(target))
            }
        }
    }

    /// Deployment-wide audit sum: every instance's committed-row-write total
    /// added up. The consistency check a TPC-C run ends with — the total
    /// must equal the sum of `write_rows()` over every committed plan (both
    /// branches of a committed remote Payment included).
    pub fn audit_total(&mut self) -> io::Result<u64> {
        let mut sum = 0u64;
        for i in 0..self.deploy.instances() {
            let conn = self.conn(i)?;
            sum += conn.audit()?;
        }
        Ok(sum)
    }
}

/// The transport seam the 2PC driver runs against. The live implementation
/// is [`DeployClient`]'s per-instance connections; tests substitute a
/// scripted mock to pin driver invariants that need injected failures (a
/// decision written without its ack read leaves a stale frame that
/// desynchronizes the connection for the next round).
trait TwoPcLink {
    /// Ship one frame to participant `to`.
    fn send(&mut self, to: usize, frame: &Request) -> io::Result<()>;
    /// Read the next reply from `to` with the vote/ack deadline armed.
    fn recv(&mut self, from: usize) -> io::Result<Reply>;
    /// Poison `to`'s connection (unreachable or desynchronized).
    fn mark_dead(&mut self, to: usize);
    /// Force a commit decision record for `gtid` to the coordinator log.
    fn force_commit(&mut self, gtid: u64);
}

impl TwoPcLink for DeployClient {
    fn send(&mut self, to: usize, frame: &Request) -> io::Result<()> {
        // Scripted fault injection hooks: the kill lands exactly between
        // protocol steps, so the drill hits the same in-doubt windows every
        // run instead of whenever a signal happens to land.
        match frame {
            Request::Prepare(_) | Request::PreparePlan(_) => {
                self.deploy.maybe_fire_fault(FaultPoint::PrePrepare, to);
            }
            Request::Decision { .. } => {
                self.deploy
                    .maybe_fire_fault(FaultPoint::PostPreparePreDecision, to);
            }
            _ => {}
        }
        let sent = self.conn(to).and_then(|c| c.send_request(frame));
        if sent.is_ok() && matches!(frame, Request::Decision { .. }) {
            self.deploy
                .maybe_fire_fault(FaultPoint::PostDecisionPreAck, to);
        }
        sent
    }

    fn recv(&mut self, from: usize) -> io::Result<Reply> {
        self.recv_timed(from)
    }

    fn mark_dead(&mut self, to: usize) {
        DeployClient::mark_dead(self, to);
    }

    fn force_commit(&mut self, gtid: u64) {
        // Write-through BEFORE any Decision frame leaves: recovery must
        // reach the same verdict the live protocol acted on.
        self.deploy.decisions.force(gtid, true);
    }
}

/// Carry out coordinator actions in FIFO order (`ForceCommitDecision` must
/// hit the log before any decision message leaves). Every decision sent
/// pushes its participant onto `ack_wait` — **always** the live wait list,
/// so acks owed for follow-up decisions are collected no matter which phase
/// emitted them.
fn process_actions<L: TwoPcLink>(
    link: &mut L,
    coord: &mut Coordinator,
    gtid: u64,
    actions: Vec<Action>,
    ack_wait: &mut Vec<usize>,
    outcome: &mut Option<bool>,
) {
    let mut queue: std::collections::VecDeque<Action> = actions.into();
    while let Some(action) = queue.pop_front() {
        match action {
            Action::SendPrepare { .. } => unreachable!("prepares already sent"),
            Action::ForceCommitDecision { gtid } => link.force_commit(gtid),
            Action::SendDecision { to, commit } => {
                let frame = Request::Decision { gtid, commit };
                match link.send(to, &frame) {
                    Ok(()) => ack_wait.push(to),
                    Err(_) => {
                        link.mark_dead(to);
                        queue.extend(coord.on_participant_failure(to));
                    }
                }
            }
            Action::Finish { commit } => *outcome = Some(commit),
        }
    }
}

/// Phase 2: collect an ack for every decision sent. `ack_wait` is a live
/// worklist, not a snapshot — handling one participant's failure can emit a
/// follow-up decision, and that decision's ack must be read too (it used to
/// be pushed into a throwaway `Vec`, leaving the ack unread: the stale frame
/// desynchronized the connection and the next 2PC round misread it as a
/// vote, turning into a spurious presumed abort). Returns whether any
/// participant failed during the phase.
fn collect_acks<L: TwoPcLink>(
    link: &mut L,
    coord: &mut Coordinator,
    gtid: u64,
    ack_wait: &mut Vec<usize>,
    outcome: &mut Option<bool>,
) -> bool {
    let mut ack_failure = false;
    let mut next = 0;
    while next < ack_wait.len() {
        let to = ack_wait[next];
        next += 1;
        match link.recv(to) {
            Ok(Reply::Ack { gtid: g }) if g == gtid => {
                let actions = coord.on_ack(to);
                process_actions(link, coord, gtid, actions, ack_wait, outcome);
            }
            _ => {
                link.mark_dead(to);
                ack_failure = true;
                let actions = coord.on_participant_failure(to);
                process_actions(link, coord, gtid, actions, ack_wait, outcome);
            }
        }
    }
    ack_failure
}

/// One full round of 2PC over `link`: prepare fan-out, vote collection,
/// decision fan-out, ack collection, with participant failures reported to
/// the [`Coordinator`] state machine as they surface. `prepare_frame`
/// builds participant `to`'s phase-1 frame — a micro [`Request::Prepare`]
/// or a multi-step [`Request::PreparePlan`]; everything from the votes on
/// is branch-type-agnostic.
fn drive_2pc<L: TwoPcLink, F: Fn(u64, usize) -> Request>(
    link: &mut L,
    gtid: u64,
    parts: &[usize],
    prepare_frame: F,
) -> io::Result<TwoPc> {
    let (mut coord, prepares) = Coordinator::new(gtid, parts.to_vec());

    // Phase 1 fan-out, exactly as the state machine instructs. The phase
    // timers feed the *coordinator process's* registry: where the instance
    // side records handler durations, this side records what the paper's
    // multisite client actually waits — prepare fan-out to last vote, and
    // decision fan-out to last ack, wire time included.
    let prepare_started = Instant::now();
    let mut sent: Vec<usize> = Vec::new();
    let mut unreachable: Vec<usize> = Vec::new();
    for action in prepares {
        let Action::SendPrepare { to } = action else {
            unreachable!("prepare fan-out yields only SendPrepare");
        };
        if unreachable.is_empty() {
            let frame = prepare_frame(gtid, to);
            match link.send(to, &frame) {
                Ok(()) => {
                    sent.push(to);
                    continue;
                }
                Err(_) => link.mark_dead(to),
            }
        }
        // After the first unreachable participant the transaction is
        // doomed; don't spend prepares on the rest.
        unreachable.push(to);
    }

    // Collect votes from everyone actually prepared.
    let mut votes: Vec<(usize, Vote)> = Vec::new();
    let mut failed: Vec<usize> = unreachable;
    let mut server_error: Option<String> = None;
    for &p in &sent {
        match link.recv(p) {
            Ok(Reply::Vote { gtid: g, vote }) if g == gtid => votes.push((p, vote)),
            Ok(Reply::Error { message }) => {
                // Misrouted/malformed branch: the participant rolled
                // nothing back and holds nothing; treat as a No vote and
                // surface the message.
                server_error.get_or_insert(message);
                votes.push((p, Vote::No));
            }
            Ok(_) | Err(_) => {
                link.mark_dead(p);
                failed.push(p);
            }
        }
    }

    if !sent.is_empty() {
        islands_obs::metrics().record_prepare(prepare_started.elapsed().as_nanos() as u64);
    }

    // Drive the state machine: votes first, then failures; carry out every
    // action it emits. Decisions are sent immediately; their acks are
    // collected afterwards (phase 2 is pipelined like phase 1).
    let decision_started = Instant::now();
    let mut ack_wait: Vec<usize> = Vec::new();
    let mut outcome: Option<bool> = None;
    for (p, vote) in votes {
        let actions = coord.on_vote(p, vote);
        process_actions(link, &mut coord, gtid, actions, &mut ack_wait, &mut outcome);
    }
    let any_failure = !failed.is_empty();
    for p in failed {
        let actions = coord.on_participant_failure(p);
        process_actions(link, &mut coord, gtid, actions, &mut ack_wait, &mut outcome);
    }

    let ack_failure = collect_acks(link, &mut coord, gtid, &mut ack_wait, &mut outcome);
    if !ack_wait.is_empty() {
        islands_obs::metrics().record_decision(decision_started.elapsed().as_nanos() as u64);
    }

    match outcome {
        // A forced commit stays a commit even if an ack never arrived:
        // the decision record is what counts (the participant resolves
        // itself from it on recovery).
        Some(true) => Ok(TwoPc::Commit),
        Some(false) => {
            if let Some(message) = server_error {
                Ok(TwoPc::Error(message))
            } else if any_failure || ack_failure {
                Ok(TwoPc::PresumedAbort)
            } else {
                Ok(TwoPc::Abort)
            }
        }
        None => Err(io::Error::other("2PC finished without an outcome")),
    }
}

/// Instance-child entry point: call this first thing in any binary that may
/// serve as a [`SpawnMode::SelfExec`] host. When the process was started
/// with [`INSTANCE_CHILD_FLAG`], it runs the instance server to completion
/// and exits; otherwise it returns immediately.
pub fn run_instance_child_if_requested() {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() == Some(INSTANCE_CHILD_FLAG) {
        std::process::exit(instance_child_main(args.collect()));
    }
}

/// Run one instance process from parsed-out child arguments; returns the
/// process exit code (0 clean, 2 = in-doubt leak, 1 = setup failure).
pub fn instance_child_main(args: Vec<String>) -> i32 {
    match run_instance(&args) {
        Ok(false) => 0,
        Ok(true) => {
            eprintln!("islands-instance: drained with in-doubt transactions leaked");
            2
        }
        Err(e) => {
            eprintln!("islands-instance: {e}");
            1
        }
    }
}

fn run_instance(args: &[String]) -> io::Result<bool> {
    let mut endpoint: Option<Endpoint> = None;
    let mut lo = 0u64;
    let mut hi = 0u64;
    let mut warehouses = 0u64;
    let mut w_lo = 0u64;
    let mut w_hi = 0u64;
    let mut row_size = 64usize;
    let mut retry_limit = 64u32;
    let mut lock_ms = 200u64;
    let mut single_threaded = false;
    let mut engine_mode = EngineMode::Locked;
    let mut pin_cpus: Option<String> = None;
    let mut stats_every_ms = 500u64;
    let mut obs = true;
    let mut wal: Option<PathBuf> = None;
    let mut coord: Option<Endpoint> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| io::Error::other(format!("{name} requires a value")))
        };
        let parse_err = |name: &str, v: &str| io::Error::other(format!("bad {name}: {v}"));
        match flag.as_str() {
            "--endpoint" => {
                let v = value("--endpoint")?;
                endpoint = Some(Endpoint::parse(v).map_err(io::Error::other)?);
            }
            "--lo" => {
                let v = value("--lo")?;
                lo = v.parse().map_err(|_| parse_err("--lo", v))?;
            }
            "--hi" => {
                let v = value("--hi")?;
                hi = v.parse().map_err(|_| parse_err("--hi", v))?;
            }
            "--warehouses" => {
                let v = value("--warehouses")?;
                warehouses = v.parse().map_err(|_| parse_err("--warehouses", v))?;
            }
            "--w-lo" => {
                let v = value("--w-lo")?;
                w_lo = v.parse().map_err(|_| parse_err("--w-lo", v))?;
            }
            "--w-hi" => {
                let v = value("--w-hi")?;
                w_hi = v.parse().map_err(|_| parse_err("--w-hi", v))?;
            }
            "--row-size" => {
                let v = value("--row-size")?;
                row_size = v.parse().map_err(|_| parse_err("--row-size", v))?;
            }
            "--retry-limit" => {
                let v = value("--retry-limit")?;
                retry_limit = v.parse().map_err(|_| parse_err("--retry-limit", v))?;
            }
            "--lock-ms" => {
                let v = value("--lock-ms")?;
                lock_ms = v.parse().map_err(|_| parse_err("--lock-ms", v))?;
            }
            "--single-threaded" => single_threaded = true,
            "--engine" => {
                let v = value("--engine")?;
                engine_mode = EngineMode::parse(v).map_err(io::Error::other)?;
            }
            "--pin-cpus" => pin_cpus = Some(value("--pin-cpus")?.clone()),
            "--wal" => wal = Some(PathBuf::from(value("--wal")?)),
            "--coord" => {
                let v = value("--coord")?;
                coord = Some(Endpoint::parse(v).map_err(io::Error::other)?);
            }
            "--stats-every-ms" => {
                let v = value("--stats-every-ms")?;
                stats_every_ms = v.parse().map_err(|_| parse_err("--stats-every-ms", v))?;
            }
            "--no-obs" => obs = false,
            other => return Err(io::Error::other(format!("unknown instance flag {other}"))),
        }
    }
    let endpoint = endpoint.ok_or_else(|| io::Error::other("--endpoint is required"))?;
    // The registry is process-global and this process *is* one instance, so
    // the gate is per-instance by construction.
    islands_obs::set_enabled(obs);

    // `--warehouses` switches the instance to TPC-C-lite mode: it loads
    // warehouses `[w_lo, w_hi)` (districts, customers, stock included) and
    // serves multi-step plans against them; `--lo/--hi` are the micro-table
    // row range otherwise.
    let tpcc = (warehouses > 0).then_some(TpccPartition {
        warehouses,
        w_lo,
        w_hi,
    });
    let partition = PartitionConfig {
        lo,
        hi,
        row_size,
        lock_timeout: Duration::from_millis(lock_ms),
        single_threaded,
        tpcc,
        wal,
        ..Default::default()
    };
    // Serial mode: keep a handle to the executor so it can be shut down
    // (and its thread joined) after the server drains. Locked mode keeps
    // the engine handle for recovery resolution and leak accounting.
    let mut executor: Option<Arc<PartitionExecutor>> = None;
    let mut engine: Option<Arc<PartitionEngine>> = None;
    let backend = match engine_mode {
        EngineMode::Locked => {
            let built = PartitionEngine::build(&partition)
                .map_err(|e| io::Error::other(format!("partition build failed: {e}")))?;
            let built = Arc::new(built);
            engine = Some(Arc::clone(&built));
            Backend::Partition(built)
        }
        EngineMode::Serial => {
            // The child process is already taskset-pinned to its island's
            // cores; --pin-cpus re-pins the executor thread to the same
            // list explicitly (and records the fact in its stats).
            let exec = PartitionExecutor::spawn(ExecutorConfig {
                partition,
                pin_cpus,
                ..Default::default()
            })
            .map_err(|e| io::Error::other(format!("executor build failed: {e}")))?;
            let exec = Arc::new(exec);
            executor = Some(Arc::clone(&exec));
            Backend::Executor(exec)
        }
    };

    // Crash recovery rejoin, before READY: WAL replay parked any branch
    // that was prepared-but-undecided when the previous incarnation died.
    // Ask the coordinator's resolver for each verdict (presumed abort: an
    // unknown gtid answers abort). Without a reachable coordinator the
    // branches stay parked — never presume abort unilaterally; the leak is
    // then visible in the drain accounting below.
    let recovered = recovered_gtids(&engine, &executor)?;
    if !recovered.is_empty() {
        match &coord {
            Some(coord) => {
                if let Err(e) = resolve_with_coordinator(coord, &recovered, &engine, &executor) {
                    eprintln!(
                        "islands-instance: in-doubt resolution failed \
                         ({} branch(es) stay parked): {e}",
                        recovered_gtids(&engine, &executor)?.len()
                    );
                }
            }
            None => eprintln!(
                "islands-instance: {} recovered in-doubt branch(es) but no \
                 --coord to resolve against; leaving them parked",
                recovered.len()
            ),
        }
    }

    let handle = Server::spawn_backend(
        backend,
        endpoint,
        ServerConfig {
            retry_limit,
            ..Default::default()
        },
    )?;

    // Readiness handshake: the parent parses this for the resolved endpoint
    // (TCP port 0 becomes a real port here).
    {
        let mut out = io::stdout().lock();
        writeln!(out, "READY {}", handle.endpoint())?;
        out.flush()?;
    }
    // Heartbeat printer: a mid-run observer (tail, a scraper that lost its
    // socket, the parent after a SIGKILL) gets counters without asking the
    // server anything. The probe is minted before `join` consumes the
    // handle; the channel doubles as the stop signal (dropping the sender
    // ends the recv_timeout loop).
    let heartbeat = (stats_every_ms > 0).then(|| {
        let probe = handle.probe();
        let period = Duration::from_millis(stats_every_ms);
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let printer = std::thread::spawn(move || {
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) = stop_rx.recv_timeout(period)
            {
                let mut out = io::stdout().lock();
                let _ = writeln!(out, "{}", format_stats(&probe.stats()));
                let _ = out.flush();
            }
        });
        (stop_tx, printer)
    });
    let mut stats = handle.join()?;
    if let Some((stop_tx, printer)) = heartbeat {
        drop(stop_tx);
        let _ = printer.join();
    }
    // Recovered branches the resolver never settled are in-doubt leaks just
    // like session-parked ones: fold them into the drain accounting before
    // the executor (whose thread answers the query) shuts down.
    stats.in_doubt += recovered_gtids(&engine, &executor)?.len() as u64;
    // All sessions have exited (join waits for them), so the Arc the
    // acceptor held is gone: reclaim the executor and join its thread.
    if let Some(exec) = executor {
        if let Ok(exec) = Arc::try_unwrap(exec) {
            exec.shutdown();
        }
    }
    let mut out = io::stdout().lock();
    writeln!(out, "{}", format_stats(&stats))?;
    out.flush()?;
    Ok(stats.in_doubt != 0)
}

/// The gtids of in-doubt branches WAL replay parked on this instance's
/// engine (whichever mode owns it).
fn recovered_gtids(
    engine: &Option<Arc<PartitionEngine>>,
    executor: &Option<Arc<PartitionExecutor>>,
) -> io::Result<Vec<u64>> {
    match (engine, executor) {
        (Some(e), _) => Ok(e.recovered_gtids()),
        (_, Some(x)) => x
            .recovered_gtids()
            .map_err(|e| io::Error::other(e.to_string())),
        _ => Ok(Vec::new()),
    }
}

/// Ask the coordinator's resolver for each parked gtid's verdict and apply
/// it. Stops at the first failure, leaving the remaining branches parked
/// for a later attempt (or the drain leak check).
fn resolve_with_coordinator(
    coord: &Endpoint,
    gtids: &[u64],
    engine: &Option<Arc<PartitionEngine>>,
    executor: &Option<Arc<PartitionExecutor>>,
) -> io::Result<()> {
    let mut conn = Client::connect_with_retry(coord, Duration::from_secs(5))?;
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    for &gtid in gtids {
        conn.send_request(&Request::ResolveGtid { gtid })?;
        let commit = match conn.recv_reply()? {
            Reply::Resolved { gtid: g, commit } if g == gtid => commit,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("resolver answered {other:?} for gtid {gtid}"),
                ))
            }
        };
        apply_verdict(gtid, commit, engine, executor)?;
    }
    Ok(())
}

/// Apply one resolved verdict to the parked branch.
fn apply_verdict(
    gtid: u64,
    commit: bool,
    engine: &Option<Arc<PartitionEngine>>,
    executor: &Option<Arc<PartitionExecutor>>,
) -> io::Result<()> {
    match (engine, executor) {
        (Some(e), _) => {
            e.resolve_recovered(gtid, commit)
                .map_err(|e| io::Error::other(format!("resolving gtid {gtid}: {e}")))?;
            Ok(())
        }
        (_, Some(x)) => {
            // A throwaway session: Decide falls through to the engine's
            // recovered map on the executor thread. The session prepared
            // nothing, so closing it on drop rolls back nothing.
            use islands_core::native::DecideOutcome;
            let session = x.session();
            match session.decide(gtid, commit) {
                Ok(DecideOutcome::Applied | DecideOutcome::AbortNoop) => Ok(()),
                Ok(DecideOutcome::UnknownCommit) => Err(io::Error::other(format!(
                    "commit verdict for gtid {gtid} found no parked branch"
                ))),
                Ok(DecideOutcome::Failed(m)) => {
                    Err(io::Error::other(format!("resolving gtid {gtid}: {m}")))
                }
                Err(e) => Err(io::Error::other(format!("resolving gtid {gtid}: {e}"))),
            }
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islands_workload::OpKind;

    #[test]
    fn rows_fewer_than_instances_is_rejected_not_misrouted() {
        // Regression: owner_of used to clamp `per` with `.max(1)` while
        // range_of did not, so rows < instances routed keys to instances
        // whose loaded range was empty. The shape is now rejected up front.
        let cfg = DeployConfig {
            instances: 8,
            total_rows: 4,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let err = match Deployment::spawn(&cfg) {
            Err(e) => e,
            Ok(_) => panic!("spawn must reject rows < instances"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn validate_accepts_the_default_and_rejects_degenerate_shapes() {
        assert!(DeployConfig::default().validate().is_ok());
        for cfg in [
            DeployConfig {
                instances: 0,
                ..Default::default()
            },
            DeployConfig {
                row_size: 0,
                ..Default::default()
            },
            DeployConfig {
                vote_timeout: Duration::from_millis(1),
                ..Default::default()
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} must not validate");
        }
    }

    proptest::proptest! {
        /// For every partitionable shape (rows >= instances), the range map
        /// and the ownership map are the same function: every key of
        /// instance i's loaded range is owned by i, and the ranges tile the
        /// keyspace with no instance left empty.
        #[test]
        fn range_of_and_owner_of_agree(n in 1usize..24, extra in 0u64..2_000) {
            let rows = n as u64 + extra; // rows >= n by construction
            let mut covered = 0u64;
            for i in 0..n {
                let (lo, hi) = range_of(i, n, rows);
                proptest::prop_assert_eq!(lo, covered, "ranges must tile");
                proptest::prop_assert!(hi > lo, "instance {} loads an empty range", i);
                // Endpoints and a sample of interior keys all route home.
                for key in [lo, (lo + hi) / 2, hi - 1] {
                    proptest::prop_assert_eq!(
                        owner_of(key, n, rows), i,
                        "key {} with {} instances over {} rows", key, n, rows
                    );
                }
                covered = hi;
            }
            proptest::prop_assert_eq!(covered, rows);
        }
    }

    #[test]
    fn ranges_tile_the_keyspace() {
        let n = 4;
        let rows = 403; // deliberately not divisible
        let mut covered = 0u64;
        for i in 0..n {
            let (lo, hi) = range_of(i, n, rows);
            assert_eq!(lo, covered);
            covered = hi;
        }
        assert_eq!(covered, rows);
    }

    #[test]
    fn owner_of_agrees_with_range_of_for_every_key() {
        for (n, rows) in [(1usize, 10u64), (4, 403), (7, 100), (3, 3)] {
            for i in 0..n {
                let (lo, hi) = range_of(i, n, rows);
                for key in lo..hi {
                    assert_eq!(
                        owner_of(key, n, rows),
                        i,
                        "key {key} with {n} instances over {rows} rows"
                    );
                }
            }
        }
    }

    #[test]
    fn split_preserves_first_touch_order_and_key_order() {
        let req = TxnRequest {
            kind: OpKind::Update,
            keys: vec![350, 10, 360, 120],
            multisite: true,
        };
        let (order, branches) = split_by_owner(&req, 4, 400);
        assert_eq!(order, vec![3, 0, 1]);
        assert_eq!(branches[&3].keys, vec![350, 360]);
        assert_eq!(branches[&0].keys, vec![10]);
        assert_eq!(branches[&1].keys, vec![120]);
        assert!(branches.values().all(|b| b.multisite));
        assert!(branches.values().all(|b| b.kind == OpKind::Update));
    }

    #[test]
    fn split_plan_follows_warehouses_not_raw_keys() {
        use islands_core::plan::{TPCC_CUSTOMER, TPCC_DISTRICT, TPCC_HISTORY, TPCC_WAREHOUSE};
        use islands_workload::plan::{PlanClass, PlanStep, StepOp};
        use islands_workload::tpcc;
        // 4 warehouses over 2 instances: w 0..2 -> 0, w 2..4 -> 1. A remote
        // Payment homed at w1 paying a w3 customer splits exactly at the
        // customer + history steps.
        let sites = WarehouseSites {
            warehouses: 4,
            n_sites: 2,
        };
        let plan = PlanRequest {
            class: PlanClass::Payment,
            multisite: true,
            steps: vec![
                PlanStep::point(TPCC_WAREHOUSE, 1, StepOp::Update),
                PlanStep::point(TPCC_DISTRICT, tpcc::district_key(1, 4), StepOp::Update),
                PlanStep::range(TPCC_CUSTOMER, tpcc::customer_key(3, 2, 16), 4),
                PlanStep::point(TPCC_CUSTOMER, tpcc::customer_key(3, 2, 17), StepOp::Update),
                PlanStep::point(TPCC_HISTORY, 1 << 32, StepOp::Insert),
            ],
        };
        let (order, branches) = split_plan_by_owner(&plan, |t, k| sites.site_of(t, k));
        assert_eq!(order, vec![0, 1], "home instance first");
        assert_eq!(branches[&0].steps.len(), 3, "W + D + history insert");
        assert_eq!(branches[&1].steps.len(), 2, "customer scan + update");
        assert!(branches.values().all(|b| b.multisite));
        assert!(branches.values().all(|b| b.class == PlanClass::Payment));
        // Step order within each branch is the plan's order.
        assert_eq!(branches[&1].steps[0].op, StepOp::RangeRead);
        assert_eq!(branches[&1].steps[1].op, StepOp::Update);
    }

    #[test]
    fn scripted_plan_2pc_sends_prepare_plan_frames_and_commits() {
        use islands_workload::plan::{PlanClass, PlanStep, StepOp};
        let gtid = 23;
        let parts = [0usize, 1];
        let branches: HashMap<usize, PlanRequest> = parts
            .iter()
            .map(|&p| {
                (
                    p,
                    PlanRequest {
                        class: PlanClass::Payment,
                        multisite: true,
                        steps: vec![PlanStep::point(
                            islands_core::plan::TPCC_WAREHOUSE,
                            p as u64,
                            StepOp::Update,
                        )],
                    },
                )
            })
            .collect();
        let mut link = ScriptedLink::new(2);
        for p in parts {
            link.script(
                p,
                Ok(Reply::Vote {
                    gtid,
                    vote: Vote::Yes,
                }),
            );
            link.script(p, Ok(Reply::Ack { gtid }));
        }
        let out = drive_2pc(&mut link, gtid, &parts, |gtid, to| {
            Request::PreparePlan(PlanBranch {
                gtid,
                plan: branches[&to].clone(),
            })
        })
        .unwrap();
        assert!(matches!(out, TwoPc::Commit));
        assert_eq!(link.forced, vec![gtid]);
        for p in parts {
            assert!(
                matches!(&link.sent[p][0], Request::PreparePlan(b) if b.gtid == gtid),
                "phase 1 to {p} must be a PreparePlan frame"
            );
            assert_eq!(
                link.sent[p][1],
                Request::Decision { gtid, commit: true },
                "phase 2 is the shared Decision frame"
            );
        }
    }

    #[test]
    fn tpcc_deploy_config_validates_warehouse_shapes() {
        let ok = DeployConfig {
            instances: 2,
            workload: DeployWorkload::Tpcc { warehouses: 4 },
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
        let too_few = DeployConfig {
            instances: 8,
            workload: DeployWorkload::Tpcc { warehouses: 4 },
            ..Default::default()
        };
        assert!(too_few.validate().is_err());
    }

    #[test]
    fn stats_line_round_trips() {
        let stats = crate::server::ServerStats {
            connections: 0,
            requests: 0,
            commits: 10,
            aborts: 2,
            errors: 1,
            prepares: 7,
            decisions: 6,
            presumed_aborts: 1,
            in_doubt: 0,
        };
        let parsed = parse_stats(&format_stats(&stats)).unwrap();
        assert_eq!(
            parsed,
            InstanceStats {
                commits: 10,
                aborts: 2,
                errors: 1,
                prepares: 7,
                decisions: 6,
                presumed_aborts: 1,
                in_doubt: 0,
            }
        );
        assert_eq!(parse_stats("STATS commits=nope"), None);
        assert_eq!(parse_stats("nonsense"), None);
        // Heartbeats from a newer child may carry keys this parent has no
        // slot for; they are skipped, not fatal.
        let tolerant = parse_stats("STATS commits=3 p99_us=412 in_doubt=1").unwrap();
        assert_eq!(tolerant.commits, 3);
        assert_eq!(tolerant.in_doubt, 1);
    }

    /// Scripted [`TwoPcLink`]: per-participant reply queues plus a full log
    /// of sends/recvs, for driving [`drive_2pc`]/[`collect_acks`] through
    /// failure interleavings a live deployment cannot produce on demand.
    struct ScriptedLink {
        replies: Vec<std::collections::VecDeque<io::Result<Reply>>>,
        sent: Vec<Vec<Request>>,
        recvs: Vec<usize>,
        dead: Vec<bool>,
        forced: Vec<u64>,
    }

    impl ScriptedLink {
        fn new(participants: usize) -> Self {
            ScriptedLink {
                replies: (0..participants).map(|_| Default::default()).collect(),
                sent: vec![Vec::new(); participants],
                recvs: vec![0; participants],
                dead: vec![false; participants],
                forced: Vec::new(),
            }
        }

        fn script(&mut self, from: usize, reply: io::Result<Reply>) {
            self.replies[from].push_back(reply);
        }

        fn timeout() -> io::Error {
            io::Error::new(io::ErrorKind::TimedOut, "scripted timeout")
        }
    }

    impl TwoPcLink for ScriptedLink {
        fn send(&mut self, to: usize, frame: &Request) -> io::Result<()> {
            if self.dead[to] {
                return Err(io::Error::new(io::ErrorKind::NotConnected, "dead"));
            }
            self.sent[to].push(frame.clone());
            Ok(())
        }

        fn recv(&mut self, from: usize) -> io::Result<Reply> {
            if self.dead[from] {
                return Err(io::Error::new(io::ErrorKind::NotConnected, "dead"));
            }
            self.recvs[from] += 1;
            self.replies[from].pop_front().unwrap_or_else(|| {
                panic!("recv from {from} with nothing scripted");
            })
        }

        fn mark_dead(&mut self, to: usize) {
            self.dead[to] = true;
        }

        fn force_commit(&mut self, gtid: u64) {
            self.forced.push(gtid);
        }
    }

    fn branch_map(parts: &[usize]) -> HashMap<usize, TxnRequest> {
        parts
            .iter()
            .map(|&p| {
                (
                    p,
                    TxnRequest {
                        kind: OpKind::Update,
                        keys: vec![p as u64],
                        multisite: true,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn ack_phase_follow_up_decision_gets_its_ack_collected() {
        // Regression: the ack loop used to hand `process` a throwaway
        // `&mut Vec::new()`, so a decision emitted while handling an
        // ack-phase participant failure was written but its ack never read,
        // leaving a stale frame on that connection. The wait list is now a
        // live worklist.
        //
        // Construct the coordinator mid-flight: participant 1 voted Yes;
        // participant 0 is still owed a reply the driver is waiting on.
        let gtid = 7;
        let (mut coord, _) = Coordinator::new(gtid, vec![0, 1]);
        assert!(coord.on_vote(1, Vote::Yes).is_empty());
        let mut link = ScriptedLink::new(2);
        // Participant 0 times out during ack collection -> its failure
        // counts as a No vote -> the coordinator emits the abort decision
        // for participant 1 *inside the ack phase*.
        link.script(0, Err(ScriptedLink::timeout()));
        link.script(1, Ok(Reply::Ack { gtid }));

        let mut ack_wait = vec![0];
        let mut outcome = None;
        let failed = collect_acks(&mut link, &mut coord, gtid, &mut ack_wait, &mut outcome);

        assert!(failed, "participant 0's timeout must be reported");
        assert_eq!(
            link.sent[1],
            vec![Request::Decision {
                gtid,
                commit: false
            }],
            "the follow-up abort decision must reach participant 1"
        );
        // The heart of the regression: participant 1's ack must be *read*,
        // not left rotting on the connection for the next round to misread.
        assert_eq!(
            link.recvs[1], 1,
            "the follow-up decision's ack was never collected"
        );
        assert!(!link.dead[1], "participant 1 stays healthy");
        assert_eq!(outcome, Some(false));
        assert_eq!(ack_wait, vec![0, 1], "wait list is live, not a snapshot");
    }

    #[test]
    fn scripted_unanimous_yes_commits_and_reads_every_ack() {
        let gtid = 11;
        let parts = [0usize, 1, 2];
        let mut link = ScriptedLink::new(3);
        for p in parts {
            link.script(
                p,
                Ok(Reply::Vote {
                    gtid,
                    vote: Vote::Yes,
                }),
            );
            link.script(p, Ok(Reply::Ack { gtid }));
        }
        let branches = branch_map(&parts);
        let out = drive_2pc(&mut link, gtid, &parts, |gtid, to| {
            Request::Prepare(TxnBranch {
                gtid,
                req: branches[&to].clone(),
            })
        })
        .unwrap();
        assert!(matches!(out, TwoPc::Commit));
        assert_eq!(link.forced, vec![gtid], "commit decision must be forced");
        for p in parts {
            assert_eq!(link.recvs[p], 2, "vote + ack read from {p}");
            assert_eq!(link.sent[p].len(), 2, "prepare + decision sent to {p}");
            assert!(!link.dead[p]);
        }
    }

    #[test]
    fn scripted_vote_timeout_presumes_abort_and_settles_survivors() {
        let gtid = 13;
        let parts = [0usize, 1];
        let mut link = ScriptedLink::new(2);
        link.script(
            0,
            Ok(Reply::Vote {
                gtid,
                vote: Vote::Yes,
            }),
        );
        link.script(0, Ok(Reply::Ack { gtid }));
        link.script(1, Err(ScriptedLink::timeout()));
        let branches = branch_map(&parts);
        let out = drive_2pc(&mut link, gtid, &parts, |gtid, to| {
            Request::Prepare(TxnBranch {
                gtid,
                req: branches[&to].clone(),
            })
        })
        .unwrap();
        assert!(matches!(out, TwoPc::PresumedAbort));
        assert!(link.forced.is_empty(), "presumed abort forces nothing");
        assert_eq!(
            link.sent[0].last(),
            Some(&Request::Decision {
                gtid,
                commit: false
            }),
            "survivor must receive the abort decision"
        );
        assert_eq!(link.recvs[0], 2, "survivor's abort ack must be read");
        assert!(link.dead[1]);
    }

    #[test]
    fn pin_sets_cover_every_instance() {
        for n in [1, 2, 3, 8, 64] {
            let pins = island_pin_sets(n);
            assert_eq!(pins.len(), n);
            assert!(pins
                .iter()
                .all(|p| p.as_deref().is_some_and(|s| !s.is_empty())));
        }
    }

    #[test]
    fn fault_point_parse_round_trips_and_rejects_junk() {
        for point in [
            FaultPoint::PrePrepare,
            FaultPoint::PostPreparePreDecision,
            FaultPoint::PostDecisionPreAck,
        ] {
            assert_eq!(FaultPoint::parse(point.label()), Ok(point));
        }
        assert!(FaultPoint::parse("mid-prepare").is_err());
        assert!(FaultPoint::parse("").is_err());
    }

    #[test]
    fn decision_store_reopen_resumes_verdicts() {
        let dir = std::env::temp_dir().join(format!(
            "islands-decision-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let store = DecisionStore::open(Some(&dir)).unwrap();
        store.force(7, true);
        store.force(8, false);
        assert!(store.commit_verdict(7));
        assert!(!store.commit_verdict(8));
        drop(store);

        // A second coordinator life over the same directory keeps answering
        // for decisions from the first, and still presumes abort for gtids
        // nobody ever decided.
        let reopened = DecisionStore::open(Some(&dir)).unwrap();
        assert_eq!(reopened.decided_count(), 2);
        assert!(reopened.commit_verdict(7));
        assert!(!reopened.commit_verdict(8));
        assert!(
            !reopened.commit_verdict(9),
            "unknown gtid must presume abort"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connect_backoff_waits_out_a_late_binding_listener() {
        let sock = std::env::temp_dir().join(format!(
            "islands-backoff-{}-{:?}.sock",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&sock);

        // Nothing listens and nothing will: the budget must bound the wait.
        let endpoint = Endpoint::Uds(sock.clone());
        assert!(connect_backoff(&endpoint, Duration::from_millis(50)).is_err());

        // A listener that binds late — the restart window — must be reached
        // by a connect that starts before the bind.
        let binder = {
            let sock = sock.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                let listener = UnixListener::bind(&sock).unwrap();
                let _ = listener.accept();
            })
        };
        assert!(
            connect_backoff(&endpoint, Duration::from_secs(5)).is_ok(),
            "backoff must outlast a 100ms bind delay"
        );
        binder.join().unwrap();
        let _ = std::fs::remove_file(&sock);
    }
}
