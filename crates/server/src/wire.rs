//! The wire protocol: length-prefixed frames carrying typed messages.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! [len: u32 LE][payload: len bytes]      1 <= len <= MAX_FRAME
//! payload = [tag: u8][body...]
//! ```
//!
//! Client → server messages are [`Request`]s (submit a transaction, ping,
//! drain); server → client messages are [`Reply`]s (committed/aborted with
//! retry counts and server-side latency, protocol errors, pong, drain ack).
//! Bodies reuse the [`TxnRequest`] byte codec from `islands-workload`.
//!
//! The framing layer is streaming-friendly: [`FrameReader`] accumulates
//! bytes from a socket and yields complete payloads. An *incomplete* frame
//! is simply "not yet" (`Ok(None)`) — the connection waits for more bytes —
//! while a frame whose header declares more than [`MAX_FRAME`] bytes, a
//! zero-length frame, or a complete frame whose body fails to decode are
//! hard [`WireError`]s: no message boundary can be trusted after them.

use std::io::{self, Read};

use islands_dtxn::Vote;
use islands_obs::Snapshot;
use islands_workload::{CodecError, PlanBranch, PlanRequest, TxnBranch, TxnRequest};

use crate::server::ServerStats;

/// Largest accepted frame payload. Large enough for a request touching
/// [`islands_workload::MAX_KEYS_PER_REQUEST`] rows with room to spare,
/// small enough that a hostile length field cannot balloon memory.
pub const MAX_FRAME: usize = 64 * 1024;

/// Bytes in the frame length prefix.
pub const FRAME_HEADER: usize = 4;

// Request tags (client -> server). 0x04/0x05 are the coordinator->participant
// half of wire-level 2PC.
const TAG_SUBMIT: u8 = 0x01;
const TAG_PING: u8 = 0x02;
const TAG_DRAIN: u8 = 0x03;
const TAG_PREPARE: u8 = 0x04;
const TAG_DECISION: u8 = 0x05;
const TAG_STATS_REQUEST: u8 = 0x06;
const TAG_SUBMIT_PLAN: u8 = 0x07;
const TAG_PREPARE_PLAN: u8 = 0x08;
const TAG_AUDIT: u8 = 0x09;
const TAG_RESOLVE_GTID: u8 = 0x0A;
// Reply tags (server -> client) have the high bit set. 0x86/0x87 are the
// participant->coordinator half of wire-level 2PC.
const TAG_COMMITTED: u8 = 0x81;
const TAG_ABORTED: u8 = 0x82;
const TAG_ERROR: u8 = 0x83;
const TAG_PONG: u8 = 0x84;
const TAG_DRAINING: u8 = 0x85;
const TAG_VOTE: u8 = 0x86;
const TAG_ACK: u8 = 0x87;
const TAG_STATS_REPLY: u8 = 0x88;
const TAG_AUDIT_REPLY: u8 = 0x89;
const TAG_RESOLVED: u8 = 0x8A;

/// Fixed [`ServerStats`] prefix of a stats-reply body: 9 × u64 LE.
const SERVER_STATS_LEN: usize = 72;
/// Full stats-reply body: counters plus the encoded obs snapshot.
const STATS_BODY_LEN: usize = SERVER_STATS_LEN + islands_obs::snapshot::ENCODED_LEN;

// Vote bytes inside a TAG_VOTE body.
const VOTE_YES: u8 = 0;
const VOTE_NO: u8 = 1;
const VOTE_READ_ONLY: u8 = 2;

fn vote_to_byte(v: Vote) -> u8 {
    match v {
        Vote::Yes => VOTE_YES,
        Vote::No => VOTE_NO,
        Vote::ReadOnly => VOTE_READ_ONLY,
    }
}

fn vote_from_byte(b: u8) -> Option<Vote> {
    match b {
        VOTE_YES => Some(Vote::Yes),
        VOTE_NO => Some(Vote::No),
        VOTE_READ_ONLY => Some(Vote::ReadOnly),
        _ => None,
    }
}

/// Everything that can go wrong between bytes and messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame header declares `len` bytes, over [`MAX_FRAME`].
    Oversized { len: usize },
    /// Frame header declares zero bytes (no tag fits).
    EmptyFrame,
    /// Tag byte is not a known message of the expected direction.
    UnknownTag(u8),
    /// Message body ended early or had trailing garbage.
    BadBody { tag: u8, needed: usize, had: usize },
    /// The embedded transaction request failed to decode.
    Request(CodecError),
    /// Error-reply message was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})")
            }
            WireError::EmptyFrame => write!(f, "zero-length frame"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadBody { tag, needed, had } => write!(
                f,
                "message {tag:#04x}: body needs {needed} bytes, frame had {had}"
            ),
            WireError::Request(e) => write!(f, "embedded request: {e}"),
            WireError::BadUtf8 => write!(f, "error message is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Request(e)
    }
}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Client → server message. `Prepare` and `Decision` are spoken by a 2PC
/// coordinator to a participant instance; a server fronting a whole cluster
/// answers them with [`Reply::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run this transaction to completion and report the outcome.
    Submit(TxnRequest),
    /// Liveness / latency-floor probe.
    Ping,
    /// Ask the server to stop accepting connections and shut down once
    /// in-flight work has drained.
    Drain,
    /// 2PC phase 1: execute this branch, force the prepare record, and
    /// answer with [`Reply::Vote`]. A Yes-voting participant holds the
    /// branch in-doubt (locks included) until the decision arrives or the
    /// connection dies (presumed abort).
    Prepare(TxnBranch),
    /// 2PC phase 2: apply the coordinator's decision to the in-doubt branch
    /// and answer with [`Reply::Ack`]. An abort for an unknown gtid is
    /// acknowledged silently (presumed abort made it a no-op); a commit for
    /// an unknown gtid is a protocol error.
    Decision {
        /// Global transaction id the decision is for.
        gtid: u64,
        /// True to commit the prepared branch, false to roll it back.
        commit: bool,
    },
    /// Scrape the server's live counters and observability snapshot
    /// ([`Reply::Stats`]) without disturbing the run.
    Stats,
    /// Run this multi-step transaction plan (TPC-C NewOrder/Payment or a
    /// generic step list) to completion and report the outcome. The
    /// multi-plan analogue of [`Request::Submit`].
    SubmitPlan(PlanRequest),
    /// 2PC phase 1 for one *plan* branch: the multi-step analogue of
    /// [`Request::Prepare`]. A Yes-voting participant parks the branch —
    /// including the locks guarding its dependent reads — until the
    /// [`Request::Decision`] frame (phase 2 is shared with micro branches).
    PreparePlan(PlanBranch),
    /// Scrape the audit sum (total committed row writes across every
    /// table) for consistency checks; answered with [`Reply::AuditSum`].
    Audit,
    /// A recovering participant asks the coordinator's decision log for the
    /// fate of an in-doubt gtid; answered with [`Reply::Resolved`]. Under
    /// presumed abort an unknown gtid resolves to abort.
    ResolveGtid {
        /// Global transaction id of the in-doubt branch.
        gtid: u64,
    },
}

/// Server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Transaction committed.
    Committed {
        /// Whether it ran two-phase commit across instances.
        distributed: bool,
        /// Contention aborts retried server-side before the commit.
        retries: u32,
        /// Server-side execution time, microseconds.
        server_micros: u64,
    },
    /// Retry budget exhausted; the transaction did not commit.
    Aborted { retries: u32 },
    /// The request was malformed or unsatisfiable.
    Error { message: String },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Drain`]: shutdown is underway.
    Draining,
    /// Answer to [`Request::Prepare`]: the participant's phase-1 vote.
    Vote {
        /// Global transaction id the vote is for.
        gtid: u64,
        /// Yes (prepared, in-doubt), No (rolled back), or ReadOnly
        /// (released, skip phase 2).
        vote: Vote,
    },
    /// Answer to [`Request::Decision`]: the decision was applied (or was a
    /// presumed-abort no-op).
    Ack {
        /// Global transaction id the ack is for.
        gtid: u64,
    },
    /// Answer to [`Request::Stats`]: the server's monotonic counters plus
    /// the process-wide observability snapshot (phase breakdown, latency
    /// histograms, 2PC phase timings, gauges).
    Stats {
        /// Wire-server counters (connections, commits, in-doubt, ...).
        server: ServerStats,
        /// Metrics-registry snapshot from `islands-obs`.
        obs: Box<Snapshot>,
    },
    /// Answer to [`Request::Audit`]: the storage-level audit invariant.
    AuditSum {
        /// Sum of per-row audit counters over every table this instance
        /// serves — equals total committed row writes (updates + inserts).
        sum: u64,
    },
    /// Answer to [`Request::ResolveGtid`]: the coordinator's durable verdict
    /// for the in-doubt gtid (`commit == false` covers logged aborts and
    /// the presumed-abort default for unknown gtids alike).
    Resolved {
        /// Global transaction id the verdict is for.
        gtid: u64,
        /// True only when the decision log holds a forced commit.
        commit: bool,
    },
}

/// Messages that can be framed and unframed.
pub trait WireMessage: Sized {
    /// Append `[tag][body]` to `buf`.
    fn encode_payload(&self, buf: &mut Vec<u8>);
    /// Decode from a complete frame payload.
    fn decode_payload(payload: &[u8]) -> Result<Self, WireError>;

    /// Append the full frame (`[len][tag][body]`) to `out`.
    fn encode_frame(&self, out: &mut Vec<u8>) {
        let header_at = out.len();
        out.extend_from_slice(&[0u8; FRAME_HEADER]);
        self.encode_payload(out);
        let len = out.len() - header_at - FRAME_HEADER;
        debug_assert!(len <= MAX_FRAME, "outgoing frame over MAX_FRAME");
        out[header_at..header_at + FRAME_HEADER].copy_from_slice(&(len as u32).to_le_bytes());
    }
}

fn need(tag: u8, body: &[u8], n: usize) -> Result<(), WireError> {
    if body.len() < n {
        return Err(WireError::BadBody {
            tag,
            needed: n,
            had: body.len(),
        });
    }
    Ok(())
}

fn exactly(tag: u8, body: &[u8], n: usize) -> Result<(), WireError> {
    if body.len() != n {
        return Err(WireError::BadBody {
            tag,
            needed: n,
            had: body.len(),
        });
    }
    Ok(())
}

/// Little-endian u64 from the first 8 bytes of `b`. Callers have already
/// length-checked the body via [`need`]/[`exactly`].
fn u64_le(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// Little-endian u32 from the first 4 bytes of `b` (length pre-checked).
fn u32_le(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

impl WireMessage for Request {
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Submit(req) => {
                buf.push(TAG_SUBMIT);
                req.encode_into(buf);
            }
            Request::Ping => buf.push(TAG_PING),
            Request::Drain => buf.push(TAG_DRAIN),
            Request::Prepare(branch) => {
                buf.push(TAG_PREPARE);
                branch.encode_into(buf);
            }
            Request::Decision { gtid, commit } => {
                buf.push(TAG_DECISION);
                buf.extend_from_slice(&gtid.to_le_bytes());
                buf.push(*commit as u8);
            }
            Request::Stats => buf.push(TAG_STATS_REQUEST),
            Request::SubmitPlan(plan) => {
                buf.push(TAG_SUBMIT_PLAN);
                plan.encode_into(buf);
            }
            Request::PreparePlan(branch) => {
                buf.push(TAG_PREPARE_PLAN);
                branch.encode_into(buf);
            }
            Request::Audit => buf.push(TAG_AUDIT),
            Request::ResolveGtid { gtid } => {
                buf.push(TAG_RESOLVE_GTID);
                buf.extend_from_slice(&gtid.to_le_bytes());
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, WireError> {
        let (&tag, body) = payload.split_first().ok_or(WireError::EmptyFrame)?;
        match tag {
            TAG_SUBMIT => {
                let (req, used) = TxnRequest::decode_from(body)?;
                exactly(tag, body, used)?;
                Ok(Request::Submit(req))
            }
            TAG_PING => {
                exactly(tag, body, 0)?;
                Ok(Request::Ping)
            }
            TAG_DRAIN => {
                exactly(tag, body, 0)?;
                Ok(Request::Drain)
            }
            TAG_PREPARE => {
                let (branch, used) = TxnBranch::decode_from(body)?;
                exactly(tag, body, used)?;
                Ok(Request::Prepare(branch))
            }
            TAG_DECISION => {
                exactly(tag, body, 9)?;
                let commit = match body[8] {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError::BadBody {
                            tag,
                            needed: 9,
                            had: body.len(),
                        })
                    }
                };
                Ok(Request::Decision {
                    gtid: u64_le(body),
                    commit,
                })
            }
            TAG_STATS_REQUEST => {
                exactly(tag, body, 0)?;
                Ok(Request::Stats)
            }
            TAG_SUBMIT_PLAN => {
                let (plan, used) = PlanRequest::decode_from(body)?;
                exactly(tag, body, used)?;
                Ok(Request::SubmitPlan(plan))
            }
            TAG_PREPARE_PLAN => {
                let (branch, used) = PlanBranch::decode_from(body)?;
                exactly(tag, body, used)?;
                Ok(Request::PreparePlan(branch))
            }
            TAG_AUDIT => {
                exactly(tag, body, 0)?;
                Ok(Request::Audit)
            }
            TAG_RESOLVE_GTID => {
                exactly(tag, body, 8)?;
                Ok(Request::ResolveGtid { gtid: u64_le(body) })
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

impl WireMessage for Reply {
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Reply::Committed {
                distributed,
                retries,
                server_micros,
            } => {
                buf.push(TAG_COMMITTED);
                buf.push(*distributed as u8);
                buf.extend_from_slice(&retries.to_le_bytes());
                buf.extend_from_slice(&server_micros.to_le_bytes());
            }
            Reply::Aborted { retries } => {
                buf.push(TAG_ABORTED);
                buf.extend_from_slice(&retries.to_le_bytes());
            }
            Reply::Error { message } => {
                buf.push(TAG_ERROR);
                // Truncate at a char boundary so the frame stays bounded.
                let mut msg = message.as_str();
                if msg.len() > MAX_FRAME - 16 {
                    let mut cut = MAX_FRAME - 16;
                    while !msg.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    msg = &msg[..cut];
                }
                buf.extend_from_slice(msg.as_bytes());
            }
            Reply::Pong => buf.push(TAG_PONG),
            Reply::Draining => buf.push(TAG_DRAINING),
            Reply::Vote { gtid, vote } => {
                buf.push(TAG_VOTE);
                buf.extend_from_slice(&gtid.to_le_bytes());
                buf.push(vote_to_byte(*vote));
            }
            Reply::Ack { gtid } => {
                buf.push(TAG_ACK);
                buf.extend_from_slice(&gtid.to_le_bytes());
            }
            Reply::Stats { server, obs } => {
                buf.push(TAG_STATS_REPLY);
                for v in [
                    server.connections,
                    server.requests,
                    server.commits,
                    server.aborts,
                    server.errors,
                    server.prepares,
                    server.decisions,
                    server.presumed_aborts,
                    server.in_doubt,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                obs.encode_into(buf);
            }
            Reply::AuditSum { sum } => {
                buf.push(TAG_AUDIT_REPLY);
                buf.extend_from_slice(&sum.to_le_bytes());
            }
            Reply::Resolved { gtid, commit } => {
                buf.push(TAG_RESOLVED);
                buf.extend_from_slice(&gtid.to_le_bytes());
                buf.push(*commit as u8);
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, WireError> {
        let (&tag, body) = payload.split_first().ok_or(WireError::EmptyFrame)?;
        match tag {
            TAG_COMMITTED => {
                exactly(tag, body, 13)?;
                let distributed = match body[0] {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError::BadBody {
                            tag,
                            needed: 13,
                            had: body.len(),
                        })
                    }
                };
                Ok(Reply::Committed {
                    distributed,
                    retries: u32_le(&body[1..5]),
                    server_micros: u64_le(&body[5..13]),
                })
            }
            TAG_ABORTED => {
                exactly(tag, body, 4)?;
                Ok(Reply::Aborted {
                    retries: u32_le(body),
                })
            }
            TAG_ERROR => {
                need(tag, body, 0)?;
                Ok(Reply::Error {
                    message: std::str::from_utf8(body)
                        .map_err(|_| WireError::BadUtf8)?
                        .to_owned(),
                })
            }
            TAG_PONG => {
                exactly(tag, body, 0)?;
                Ok(Reply::Pong)
            }
            TAG_DRAINING => {
                exactly(tag, body, 0)?;
                Ok(Reply::Draining)
            }
            TAG_VOTE => {
                exactly(tag, body, 9)?;
                let vote = vote_from_byte(body[8]).ok_or(WireError::BadBody {
                    tag,
                    needed: 9,
                    had: body.len(),
                })?;
                Ok(Reply::Vote {
                    gtid: u64_le(body),
                    vote,
                })
            }
            TAG_ACK => {
                exactly(tag, body, 8)?;
                Ok(Reply::Ack { gtid: u64_le(body) })
            }
            TAG_STATS_REPLY => {
                exactly(tag, body, STATS_BODY_LEN)?;
                let mut f = [0u64; 9];
                for (i, slot) in f.iter_mut().enumerate() {
                    *slot = u64_le(&body[i * 8..]);
                }
                let obs = Snapshot::decode(&body[SERVER_STATS_LEN..]).map_err(|_| {
                    WireError::BadBody {
                        tag,
                        needed: STATS_BODY_LEN,
                        had: body.len(),
                    }
                })?;
                Ok(Reply::Stats {
                    server: ServerStats {
                        connections: f[0],
                        requests: f[1],
                        commits: f[2],
                        aborts: f[3],
                        errors: f[4],
                        prepares: f[5],
                        decisions: f[6],
                        presumed_aborts: f[7],
                        in_doubt: f[8],
                    },
                    obs: Box::new(obs),
                })
            }
            TAG_AUDIT_REPLY => {
                exactly(tag, body, 8)?;
                Ok(Reply::AuditSum { sum: u64_le(body) })
            }
            TAG_RESOLVED => {
                exactly(tag, body, 9)?;
                let commit = match body[8] {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError::BadBody {
                            tag,
                            needed: 9,
                            had: body.len(),
                        })
                    }
                };
                Ok(Reply::Resolved {
                    gtid: u64_le(body),
                    commit,
                })
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

/// Incremental frame assembler over a byte stream.
///
/// Feed it socket reads with [`fill_from`](Self::fill_from); pop complete
/// payloads with [`next_payload`](Self::next_payload). Bytes of incomplete
/// frames stay buffered across calls, so request pipelining falls out for
/// free: however many frames one `read` returns, each is yielded in order.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    start: usize,
    /// Reusable landing area for socket reads: zeroed once here, never
    /// re-zeroed — `fill_from` sits in nonblocking poll loops (the server's
    /// group-commit window), where a fresh `resize(.., 0)` per attempted
    /// read would memset 16 KiB just to learn `WouldBlock`.
    scratch: Box<[u8]>,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            scratch: vec![0u8; 16 * 1024].into_boxed_slice(),
        }
    }
}

impl FrameReader {
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Append bytes directly (tests, non-socket transports).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One `read` from `r` into the buffer. Returns the byte count (0 means
    /// EOF). `WouldBlock`/timeouts surface as `Err` for the caller to
    /// interpret.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.compact();
        let n = r.read(&mut self.scratch)?;
        self.buf.extend_from_slice(&self.scratch[..n]);
        Ok(n)
    }

    /// Pop the next complete frame payload, `Ok(None)` if more bytes are
    /// needed, or a [`WireError`] if the stream is unrecoverable
    /// (oversized/empty frame).
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32_le(avail) as usize;
        if len == 0 {
            return Err(WireError::EmptyFrame);
        }
        if len > MAX_FRAME {
            return Err(WireError::Oversized { len });
        }
        if avail.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER..FRAME_HEADER + len].to_vec();
        self.start += FRAME_HEADER + len;
        self.compact();
        Ok(Some(payload))
    }

    /// Pop and decode the next complete message.
    pub fn next_message<M: WireMessage>(&mut self) -> Result<Option<M>, WireError> {
        match self.next_payload()? {
            Some(p) => M::decode_payload(&p).map(Some),
            None => Ok(None),
        }
    }

    fn compact(&mut self) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 32 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islands_workload::OpKind;

    fn submit(keys: &[u64]) -> Request {
        Request::Submit(TxnRequest {
            kind: OpKind::Update,
            keys: keys.to_vec(),
            multisite: keys.len() > 1,
        })
    }

    fn sample_plan() -> PlanRequest {
        use islands_workload::plan::{PlanClass, PlanStep, StepOp, TPCC_CUSTOMER, TPCC_WAREHOUSE};
        PlanRequest {
            class: PlanClass::Payment,
            multisite: true,
            steps: vec![
                PlanStep::point(TPCC_WAREHOUSE, 3, StepOp::Update),
                PlanStep::range(TPCC_CUSTOMER, 900, 4),
            ],
        }
    }

    #[test]
    fn requests_round_trip() {
        for r in [
            submit(&[1, 2, 3]),
            Request::Ping,
            Request::Drain,
            Request::Prepare(TxnBranch {
                gtid: 42,
                req: TxnRequest {
                    kind: OpKind::Update,
                    keys: vec![9, 10],
                    multisite: true,
                },
            }),
            Request::Decision {
                gtid: u64::MAX,
                commit: true,
            },
            Request::Decision {
                gtid: 7,
                commit: false,
            },
            Request::SubmitPlan(sample_plan()),
            Request::PreparePlan(PlanBranch {
                gtid: 314,
                plan: sample_plan(),
            }),
            Request::Audit,
            Request::ResolveGtid { gtid: 0xDEAD_BEEF },
        ] {
            let mut frame = Vec::new();
            r.encode_frame(&mut frame);
            let mut rd = FrameReader::new();
            rd.extend(&frame);
            assert_eq!(rd.next_message::<Request>().unwrap(), Some(r));
            assert_eq!(rd.buffered(), 0);
        }
    }

    #[test]
    fn replies_round_trip() {
        for r in [
            Reply::Committed {
                distributed: true,
                retries: 3,
                server_micros: 123_456,
            },
            Reply::Aborted { retries: 17 },
            Reply::Error {
                message: "no such key".into(),
            },
            Reply::Pong,
            Reply::Draining,
            Reply::Vote {
                gtid: 99,
                vote: Vote::Yes,
            },
            Reply::Vote {
                gtid: 1,
                vote: Vote::No,
            },
            Reply::Vote {
                gtid: 2,
                vote: Vote::ReadOnly,
            },
            Reply::Ack { gtid: 1 << 60 },
            Reply::AuditSum { sum: u64::MAX - 7 },
            Reply::Resolved {
                gtid: 55,
                commit: true,
            },
            Reply::Resolved {
                gtid: 56,
                commit: false,
            },
        ] {
            let mut frame = Vec::new();
            r.encode_frame(&mut frame);
            let payload = &frame[FRAME_HEADER..];
            assert_eq!(Reply::decode_payload(payload).unwrap(), r);
        }
    }

    #[test]
    fn bad_vote_and_decision_bytes_are_rejected() {
        let mut frame = Vec::new();
        Reply::Vote {
            gtid: 5,
            vote: Vote::Yes,
        }
        .encode_frame(&mut frame);
        let mut payload = frame[FRAME_HEADER..].to_vec();
        *payload.last_mut().unwrap() = 9; // not a vote byte
        assert!(matches!(
            Reply::decode_payload(&payload),
            Err(WireError::BadBody { .. })
        ));

        let mut frame = Vec::new();
        Request::Decision {
            gtid: 5,
            commit: true,
        }
        .encode_frame(&mut frame);
        let mut payload = frame[FRAME_HEADER..].to_vec();
        *payload.last_mut().unwrap() = 2; // not a bool
        assert!(matches!(
            Request::decode_payload(&payload),
            Err(WireError::BadBody { .. })
        ));

        let mut frame = Vec::new();
        Reply::Resolved {
            gtid: 5,
            commit: false,
        }
        .encode_frame(&mut frame);
        let mut payload = frame[FRAME_HEADER..].to_vec();
        *payload.last_mut().unwrap() = 3; // not a bool
        assert!(matches!(
            Reply::decode_payload(&payload),
            Err(WireError::BadBody { .. })
        ));
    }

    #[test]
    fn pipelined_frames_pop_in_order() {
        let mut bytes = Vec::new();
        submit(&[1]).encode_frame(&mut bytes);
        Request::Ping.encode_frame(&mut bytes);
        submit(&[2, 9]).encode_frame(&mut bytes);
        let mut rd = FrameReader::new();
        // Deliver in awkward 3-byte chunks: framing must reassemble.
        for chunk in bytes.chunks(3) {
            rd.extend(chunk);
        }
        assert_eq!(rd.next_message::<Request>().unwrap(), Some(submit(&[1])));
        assert_eq!(rd.next_message::<Request>().unwrap(), Some(Request::Ping));
        assert_eq!(rd.next_message::<Request>().unwrap(), Some(submit(&[2, 9])));
        assert_eq!(rd.next_message::<Request>().unwrap(), None);
    }

    #[test]
    fn incomplete_frame_is_not_an_error() {
        let mut frame = Vec::new();
        submit(&[1, 2]).encode_frame(&mut frame);
        let mut rd = FrameReader::new();
        rd.extend(&frame[..frame.len() - 1]);
        assert_eq!(rd.next_payload().unwrap(), None);
        rd.extend(&frame[frame.len() - 1..]);
        assert!(rd.next_payload().unwrap().is_some());
    }

    #[test]
    fn oversized_and_empty_frames_are_fatal() {
        let mut rd = FrameReader::new();
        rd.extend(&((MAX_FRAME as u32) + 1).to_le_bytes());
        assert_eq!(
            rd.next_payload(),
            Err(WireError::Oversized { len: MAX_FRAME + 1 })
        );
        let mut rd = FrameReader::new();
        rd.extend(&0u32.to_le_bytes());
        assert_eq!(rd.next_payload(), Err(WireError::EmptyFrame));
    }

    #[test]
    fn unknown_tags_and_trailing_garbage_rejected() {
        assert_eq!(
            Request::decode_payload(&[0x77]),
            Err(WireError::UnknownTag(0x77))
        );
        assert_eq!(
            Request::decode_payload(&[TAG_PING, 0xFF]),
            Err(WireError::BadBody {
                tag: TAG_PING,
                needed: 0,
                had: 1
            })
        );
        // A submit body with bytes beyond the encoded request is a framing
        // bug, not silently ignored.
        let mut payload = Vec::new();
        submit(&[4]).encode_payload(&mut payload);
        payload.push(0);
        assert!(matches!(
            Request::decode_payload(&payload),
            Err(WireError::BadBody { .. })
        ));
    }
}
