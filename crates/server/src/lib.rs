//! Socket-served shared-nothing deployments.
//!
//! The paper's shared-nothing configurations are separate OS processes
//! exchanging messages over IPC — Unix domain sockets above all (Figure 6
//! measures exactly that axis). The in-process
//! [`NativeCluster`](islands_core::native::NativeCluster) replaces those
//! messages with function calls; this crate puts the messages back. It
//! fronts a cluster with a real served API over Unix domain sockets or TCP:
//!
//! * [`wire`] — a hand-rolled length-prefixed wire protocol: framed
//!   [`Request`]/[`Reply`] messages carrying
//!   [`TxnRequest`](islands_workload::TxnRequest) submissions and typed
//!   commit/abort/latency replies, with a streaming
//!   [`FrameReader`] that makes pipelining natural and
//!   rejects oversized or truncated traffic instead of trusting it.
//! * [`server`] — a multi-threaded acceptor: one session thread per
//!   connection, request pipelining with a group-commit batch window (all
//!   replies of a batch flush in one write), live counters, and graceful
//!   drain via a wire message or the local handle.
//! * [`client`] — the blocking client library: single connections
//!   ([`Client`]), one-write pipelining, and a
//!   checkout/checkin [`ClientPool`].
//! * [`deploy`] — multi-process deployments: spawn one topology-pinned
//!   server process per shared-nothing instance
//!   ([`Deployment`]), route single-site traffic to the
//!   owner, and run presumed-abort two-phase commit across processes with
//!   `Prepare`/`Vote`/`Decision`/`Ack` wire frames
//!   ([`DeployClient`]).
//!
//! ```no_run
//! use std::sync::Arc;
//! use islands_core::native::{NativeCluster, NativeClusterConfig};
//! use islands_server::{Client, Endpoint, Server, ServerConfig};
//! use islands_workload::{OpKind, TxnRequest};
//!
//! let cluster = Arc::new(NativeCluster::build_micro(&NativeClusterConfig::default()).unwrap());
//! let handle = Server::spawn(
//!     cluster,
//!     Endpoint::Uds("/tmp/islands.sock".into()),
//!     ServerConfig::default(),
//! ).unwrap();
//!
//! let mut client = Client::connect(handle.endpoint()).unwrap();
//! let reply = client.submit(&TxnRequest {
//!     kind: OpKind::Update,
//!     keys: vec![1, 39_999],
//!     multisite: true,
//! }).unwrap();
//! println!("{reply:?}");
//! client.drain_server().unwrap();
//! handle.join().unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod deploy;
pub mod server;
pub mod wire;

pub use client::{Client, ClientPool, PooledClient};
pub use deploy::{
    DeployClient, DeployConfig, DeployOutcome, DeployReply, Deployment, InstanceExit,
    InstanceStats, SpawnMode, Transport,
};
pub use islands_core::native::EngineMode;
pub use server::{Backend, Endpoint, Server, ServerConfig, ServerHandle, ServerStats, StatsProbe};
pub use wire::{FrameReader, Reply, Request, WireError, WireMessage, MAX_FRAME};
