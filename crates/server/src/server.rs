//! The served deployment: acceptor, per-connection sessions, drain.
//!
//! [`Server::spawn`] binds a Unix-domain-socket or TCP endpoint in front of
//! an [`Arc<NativeCluster>`] and returns a handle. An acceptor thread hands
//! each connection to its own session thread — the paper's shared-nothing
//! processes talk over exactly these transports, so a served `NativeCluster`
//! is the in-process deployment plus a real IPC boundary.
//!
//! Sessions implement **request pipelining with a group-commit batch
//! window**: every complete frame already buffered on the socket is decoded
//! into one batch, and when a batch is still smaller than
//! [`ServerConfig::max_batch`], the session waits up to
//! [`ServerConfig::batch_window`] for more pipelined frames before
//! executing. The whole batch then runs back-to-back and all replies are
//! flushed in a single write — one syscall amortized over the group, the
//! socket-level analogue of group commit.
//!
//! **Drain**: a [`Request::Drain`] (or [`ServerHandle::initiate_shutdown`])
//! flips the shared shutdown flag. The acceptor stops accepting, sessions
//! finish the batch in flight, flush, and exit at their next poll tick, and
//! [`ServerHandle::join`] returns the final counters once every thread is
//! gone.

use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use islands_core::native::{
    BranchOutcome, DecideOutcome, ExecutorSession, NativeCluster, PartitionEngine,
    PartitionExecutor, SubmitOutcome,
};
use islands_core::plan::{plan_from_request, MICRO_TABLE};
use islands_dtxn::{Participant, ParticipantEvent, Vote};
use islands_obs::{BreakdownCategory, TxnClass};
use islands_storage::{StorageError, TxnHandle};
use islands_workload::{PlanBranch, TxnBranch};

use crate::wire::{FrameReader, Reply, Request, WireMessage};

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix domain socket at this path.
    Uds(PathBuf),
    /// TCP socket (use port 0 to bind an ephemeral port; the handle reports
    /// the resolved address).
    Tcp(SocketAddr),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Uds(p) => write!(f, "uds:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Endpoint {
    /// Parse the [`Display`](std::fmt::Display) form back: `uds:PATH` or
    /// `tcp:HOST:PORT`. Deployment orchestrators round-trip endpoints
    /// through child process command lines and `READY` hand-shake lines.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("uds:") {
            Ok(Endpoint::Uds(path.into()))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(
                addr.parse()
                    .map_err(|e| format!("bad address {addr}: {e}"))?,
            ))
        } else {
            Err(format!("endpoint must be uds:PATH or tcp:ADDR, got {s}"))
        }
    }
}

/// Tuning knobs for a served deployment.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Server-side retry budget per submitted transaction.
    pub retry_limit: u32,
    /// Largest request batch one session executes between flushes.
    pub max_batch: usize,
    /// How long a session waits for more pipelined requests before executing
    /// a non-full batch. Zero executes immediately.
    pub batch_window: Duration,
    /// Poll granularity for noticing shutdown while idle; also the upper
    /// bound on how long a drain waits for idle sessions.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            retry_limit: 64,
            max_batch: 64,
            batch_window: Duration::from_micros(50),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// What a server fronts: a whole in-process cluster, or one partition of a
/// multi-process shared-nothing deployment.
#[derive(Clone)]
pub enum Backend {
    /// The embeddable deployment: routing and 2PC happen inside this
    /// process; the wire carries only submissions.
    Cluster(Arc<NativeCluster>),
    /// One shared-nothing instance. Local submissions commit here;
    /// [`Request::Prepare`]/[`Request::Decision`] frames drive participant-
    /// side 2PC, with presumed abort when a coordinator connection dies.
    Partition(Arc<PartitionEngine>),
    /// One shared-nothing instance in **serial executor** mode: sessions
    /// become producers that enqueue decoded requests onto the partition's
    /// dedicated executor thread instead of executing inline, so the local
    /// fast path runs with no lock-table acquisition and connection count
    /// is decoupled from execution threads.
    Executor(Arc<PartitionExecutor>),
}

/// Monotonic counters, updated by sessions, readable any time.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    errors: AtomicU64,
    prepares: AtomicU64,
    decisions: AtomicU64,
    presumed_aborts: AtomicU64,
    /// Gauge: prepared branches currently awaiting a decision.
    in_doubt: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
            presumed_aborts: self.presumed_aborts.load(Ordering::Relaxed),
            in_doubt: self.in_doubt.load(Ordering::Relaxed),
        }
    }
}

/// Cloneable, read-only view of a running server's counters.
///
/// [`ServerHandle::join`] consumes the handle, so anything that wants to
/// keep reporting stats while another thread blocks in `join` — the
/// deployment children's `STATS` heartbeat printer, for one — mints a probe
/// first and reads through it.
#[derive(Clone)]
pub struct StatsProbe {
    counters: Arc<Counters>,
}

impl StatsProbe {
    /// Current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }
}

/// Snapshot of a server's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests of any kind decoded.
    pub requests: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions that exhausted their retry budget.
    pub aborts: u64,
    /// Malformed or unsatisfiable requests answered with an error reply.
    pub errors: u64,
    /// 2PC prepare frames processed (partition backends).
    pub prepares: u64,
    /// 2PC decision frames processed (partition backends).
    pub decisions: u64,
    /// In-doubt branches rolled back because their coordinator's connection
    /// died without a decision (the presumed-abort rule, applied live).
    pub presumed_aborts: u64,
    /// Gauge: branches currently prepared and awaiting a decision. Must be
    /// zero after a clean drain — anything else is a leaked in-doubt
    /// transaction still holding locks.
    pub in_doubt: u64,
}

impl ServerStats {
    /// Add another instance's counters into this one — the deployment-wide
    /// totals a scraper's `SUM` row shows (`in_doubt` is a gauge, but the
    /// sum of gauges is the deployment-wide backlog, so plain addition is
    /// the right aggregation for every field).
    pub fn absorb(&mut self, other: &ServerStats) {
        self.connections += other.connections;
        self.requests += other.requests;
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.errors += other.errors;
        self.prepares += other.prepares;
        self.decisions += other.decisions;
        self.presumed_aborts += other.presumed_aborts;
        self.in_doubt += other.in_doubt;
    }
}

enum Listener {
    Uds(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Uds(path) => {
                // A stale socket file from a dead server would make bind
                // fail; remove it only if nothing is listening there.
                if path.exists() && UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Uds(l, path.clone()))
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Uds(_, path) => Ok(Endpoint::Uds(path.clone())),
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?)),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Uds(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Uds(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted connection, transport-erased.
pub(crate) enum Conn {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    pub(crate) fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Uds(path) => Ok(Conn::Uds(UnixStream::connect(path)?)),
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.set_read_timeout(t),
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.set_nonblocking(nb),
            Conn::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Handle to a running server. Dropping the handle does **not** stop the
/// server; call [`initiate_shutdown`](Self::initiate_shutdown) +
/// [`join`](Self::join) (or have a client send [`Request::Drain`]).
pub struct ServerHandle {
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    acceptor: Option<std::thread::JoinHandle<io::Result<()>>>,
}

/// Namespace for [`Server::spawn`].
pub struct Server;

impl Server {
    /// Bind `endpoint` and serve `cluster` until drained.
    pub fn spawn(
        cluster: Arc<NativeCluster>,
        endpoint: Endpoint,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        Self::spawn_backend(Backend::Cluster(cluster), endpoint, config)
    }

    /// Bind `endpoint` and serve `backend` until drained.
    pub fn spawn_backend(
        backend: Backend,
        endpoint: Endpoint,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = Listener::bind(&endpoint)?;
        let resolved = listener.local_endpoint()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let config = config.clone();
            std::thread::Builder::new()
                .name("islands-acceptor".into())
                .spawn(move || accept_loop(listener, backend, config, shutdown, counters))?
        };
        Ok(ServerHandle {
            endpoint: resolved,
            shutdown,
            counters,
            acceptor: Some(acceptor),
        })
    }
}

impl ServerHandle {
    /// The resolved endpoint (actual TCP port when bound to port 0).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// Mint a [`StatsProbe`] that outlives this handle (usable while a
    /// sibling thread blocks in [`join`](Self::join)).
    pub fn probe(&self) -> StatsProbe {
        StatsProbe {
            counters: Arc::clone(&self.counters),
        }
    }

    /// Whether a drain/shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Begin a drain, as if a client had sent [`Request::Drain`].
    pub fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the acceptor and every session to exit; returns the final
    /// counters. Call after a drain was initiated (by a client or
    /// [`initiate_shutdown`](Self::initiate_shutdown)) or this blocks until
    /// one happens.
    pub fn join(mut self) -> io::Result<ServerStats> {
        if let Some(h) = self.acceptor.take() {
            h.join()
                .map_err(|_| io::Error::other("acceptor thread panicked"))??;
        }
        Ok(self.stats())
    }
}

/// How many session handles may accumulate before a push forces a prune.
/// Small enough that the handle list stays O(live sessions), large enough
/// that a busy accept loop is not scanning the list on every connection.
const SESSION_PRUNE_WATERMARK: usize = 64;

/// Bookkeeping for spawned session threads.
///
/// Finished handles are pruned whenever a push finds the list at the
/// watermark — not only on the accept loop's idle tick. Under sustained
/// connection churn `accept` may never return `WouldBlock`, and the old
/// idle-tick-only pruning let the list grow by one `JoinHandle` per
/// connection ever accepted, without bound.
struct SessionSet {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl SessionSet {
    fn new() -> Self {
        SessionSet {
            handles: Vec::new(),
        }
    }

    fn push(&mut self, handle: std::thread::JoinHandle<()>) {
        if self.handles.len() >= SESSION_PRUNE_WATERMARK {
            self.prune();
        }
        self.handles.push(handle);
    }

    fn prune(&mut self) {
        self.handles.retain(|h| !h.is_finished());
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.handles.len()
    }

    fn join_all(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// `WouldBlock` streak length the acceptor spends just yielding before it
/// starts sleeping: a connection arriving moments after the last one is
/// accepted with sub-scheduler-tick latency.
const ACCEPT_SPIN_YIELDS: u32 = 64;

/// Ceiling on the adaptive accept sleep. The old fixed
/// `poll_interval.min(5ms)` nap added up to 5 ms of connect latency per
/// accept; capping the park at 250 µs keeps a fresh connection's accept
/// wait well under a millisecond while an idle acceptor still wakes only a
/// few thousand times per second.
const ACCEPT_PARK_CAP: Duration = Duration::from_micros(250);

/// Adaptive idle wait for the accept loop: spin (yield) through short gaps,
/// then escalate a 1 µs sleep exponentially up to [`ACCEPT_PARK_CAP`]
/// (never past `poll_interval`, which stays the shutdown-notice bound).
/// `None` means yield without sleeping.
fn accept_idle_wait(streak: u32, poll_interval: Duration) -> Option<Duration> {
    if streak <= ACCEPT_SPIN_YIELDS {
        return None;
    }
    let exp = (streak - ACCEPT_SPIN_YIELDS - 1).min(8);
    Some(
        Duration::from_micros(1 << exp)
            .min(ACCEPT_PARK_CAP)
            .min(poll_interval),
    )
}

fn accept_loop(
    listener: Listener,
    backend: Backend,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) -> io::Result<()> {
    let mut sessions = SessionSet::new();
    let mut idle_streak = 0u32;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                idle_streak = 0;
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let backend = backend.clone();
                let config = config.clone();
                let shutdown = Arc::clone(&shutdown);
                let counters = Arc::clone(&counters);
                sessions.push(
                    std::thread::Builder::new()
                        .name("islands-session".into())
                        .spawn(move || {
                            // Per-connection errors end that session only.
                            let _ = session(conn, backend, config, shutdown, counters);
                        })?,
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                idle_streak = idle_streak.saturating_add(1);
                match accept_idle_wait(idle_streak, config.poll_interval) {
                    None => std::thread::yield_now(),
                    Some(park) => {
                        // Genuinely idle: housekeeping is free here.
                        sessions.prune();
                        std::thread::sleep(park);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    // Drain: stop accepting (listener drops below), let sessions finish.
    drop(listener);
    sessions.join_all();
    Ok(())
}

/// Prepared 2PC branches held by one session, keyed by gtid.
///
/// A branch's coordinator speaks on this session's connection, so the map is
/// session-local: no cross-session locking, and the presumed-abort rule has
/// a precise trigger — when the session ends (clean close, protocol error,
/// drain) every branch still here is in-doubt with its coordinator gone,
/// and is rolled back.
type InDoubtBranches = HashMap<u64, (Participant, TxnHandle)>;

/// Serve one connection until it closes, errors fatally, or a drain lands.
fn session(
    conn: Conn,
    backend: Backend,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) -> io::Result<()> {
    let mut in_doubt = InDoubtBranches::new();
    // Executor backends: this session is a producer onto the partition's
    // executor thread; the session id scopes the presumed-abort rule for
    // branches prepared over this connection.
    let mut exec = match &backend {
        Backend::Executor(e) => Some(e.session()),
        _ => None,
    };
    let result = session_loop(
        conn,
        &backend,
        exec.as_ref(),
        &config,
        &shutdown,
        &counters,
        &mut in_doubt,
    );
    // Presumed abort: the coordinator's connection is gone without a
    // decision, so absence of evidence is evidence of abort. Rolling the
    // branches back releases their locks and keeps this instance
    // serviceable for everyone else.
    for (_, (_, handle)) in in_doubt.drain() {
        let _ = handle.decide(false);
        counters.presumed_aborts.fetch_add(1, Ordering::Relaxed);
        counters.in_doubt.fetch_sub(1, Ordering::Relaxed);
    }
    // Same rule on the executor: closing the producer session rolls back
    // every branch it prepared that nobody decided (executed on the
    // executor thread, so the count comes back from there).
    if let Some(mut s) = exec.take() {
        let aborted = s.close();
        if aborted > 0 {
            counters
                .presumed_aborts
                .fetch_add(aborted, Ordering::Relaxed);
            counters.in_doubt.fetch_sub(aborted, Ordering::Relaxed);
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn session_loop(
    mut conn: Conn,
    backend: &Backend,
    exec: Option<&ExecutorSession>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    counters: &Counters,
    in_doubt: &mut InDoubtBranches,
) -> io::Result<()> {
    let mut reader = FrameReader::new();
    let mut batch: Vec<Request> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    conn.set_read_timeout(Some(config.poll_interval))?;
    'conn: loop {
        // Gather a batch: everything already buffered, up to max_batch. A
        // wire error anywhere is fatal for the connection, but only after
        // the requests decoded before it have been executed and answered —
        // otherwise a pipelining client would hang waiting for replies the
        // server silently dropped.
        batch.clear();
        let mut pending_err: Option<crate::wire::WireError> = None;
        {
            // Frame decode is wire work (Fig. 11 "communication"); the
            // blocking/polling *waits* for bytes below stay unattributed so
            // an idle connection does not inflate the category.
            let _wire = islands_obs::enter(BreakdownCategory::Communication);
            loop {
                match reader.next_message::<Request>() {
                    Ok(Some(req)) => {
                        batch.push(req);
                        if batch.len() >= config.max_batch {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        pending_err = Some(e);
                        break;
                    }
                }
            }
        }

        if batch.is_empty() && pending_err.is_none() {
            // Idle: block (bounded by the poll timeout) for more bytes.
            match reader.fill_from(&mut conn) {
                Ok(0) => return Ok(()), // client hung up
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(()); // drained while idle
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            continue;
        }

        // Group-commit window: a non-full batch waits briefly for more
        // pipelined requests so their replies share one flush. Socket read
        // timeouts round up to scheduler-tick granularity (milliseconds), so
        // a microsecond window must poll nonblocking reads instead.
        if !config.batch_window.is_zero() && batch.len() < config.max_batch && pending_err.is_none()
        {
            let window_ends = Instant::now() + config.batch_window;
            conn.set_nonblocking(true)?;
            'window: loop {
                match reader.fill_from(&mut conn) {
                    Ok(0) => break, // EOF; the final batch still executes
                    Ok(_) => {
                        while batch.len() < config.max_batch {
                            match reader.next_message::<Request>() {
                                Ok(Some(req)) => batch.push(req),
                                Ok(None) => break,
                                Err(e) => {
                                    // The frame was already consumed from the
                                    // stream; remember the error so it is
                                    // answered after this batch, not dropped.
                                    pending_err = Some(e);
                                    break 'window;
                                }
                            }
                        }
                        if batch.len() >= config.max_batch {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if Instant::now() >= window_ends {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        conn.set_nonblocking(false)?;
                        return Err(e);
                    }
                }
            }
            conn.set_nonblocking(false)?;
        }

        // Execute the batch back-to-back, then flush all replies at once.
        out.clear();
        let mut drain_after_flush = false;
        for req in &batch {
            counters.requests.fetch_add(1, Ordering::Relaxed);
            match req {
                Request::Ping => Reply::Pong.encode_frame(&mut out),
                Request::Drain => {
                    drain_after_flush = true;
                    Reply::Draining.encode_frame(&mut out);
                }
                Request::Stats => Reply::Stats {
                    server: counters.snapshot(),
                    obs: Box::new(islands_obs::metrics().snapshot()),
                }
                .encode_frame(&mut out),
                Request::Prepare(branch) => {
                    counters.prepares.fetch_add(1, Ordering::Relaxed);
                    islands_obs::set_txn_class(TxnClass::Multisite);
                    let started = Instant::now();
                    // Inline backends do the work on this thread, so the
                    // management span here catches what nested storage spans
                    // don't claim; an executor backend spans itself on the
                    // executor thread (the rendezvous wait stays unclaimed).
                    let _span = exec
                        .is_none()
                        .then(|| islands_obs::enter(BreakdownCategory::XctManagement));
                    let reply = match exec {
                        Some(s) => handle_prepare_exec(s, branch, counters),
                        None => handle_prepare(backend, branch, in_doubt, counters),
                    };
                    islands_obs::metrics().record_prepare(started.elapsed().as_nanos() as u64);
                    if matches!(reply, Reply::Error { .. }) {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    reply.encode_frame(&mut out);
                }
                Request::Decision { gtid, commit } => {
                    counters.decisions.fetch_add(1, Ordering::Relaxed);
                    islands_obs::set_txn_class(TxnClass::Multisite);
                    let started = Instant::now();
                    let _span = exec
                        .is_none()
                        .then(|| islands_obs::enter(BreakdownCategory::XctManagement));
                    let reply = match exec {
                        Some(s) => handle_decision_exec(s, *gtid, *commit, counters),
                        None => handle_decision(backend, *gtid, *commit, in_doubt, counters),
                    };
                    islands_obs::metrics().record_decision(started.elapsed().as_nanos() as u64);
                    if matches!(reply, Reply::Error { .. }) {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    reply.encode_frame(&mut out);
                }
                Request::Submit(txn) => {
                    let class = if txn.multisite {
                        TxnClass::Multisite
                    } else {
                        TxnClass::Local
                    };
                    islands_obs::set_txn_class(class);
                    let started = Instant::now();
                    let _span = exec
                        .is_none()
                        .then(|| islands_obs::enter(BreakdownCategory::XctManagement));
                    let outcome: Result<SubmitOutcome, String> = match (backend, exec) {
                        (Backend::Cluster(cluster), _) => cluster
                            .submit(txn, config.retry_limit)
                            .map_err(|e| e.to_string()),
                        (Backend::Partition(engine), _) => engine
                            .submit_local(txn, config.retry_limit)
                            .map_err(|e| e.to_string()),
                        (Backend::Executor(_), Some(s)) => s.submit(txn).map_err(|e| e.to_string()),
                        (Backend::Executor(_), None) => {
                            unreachable!("executor backend always has a session")
                        }
                    };
                    encode_submit_outcome(outcome, started, counters, &mut out);
                    islands_obs::metrics().record_txn(class, started.elapsed().as_nanos() as u64);
                }
                Request::SubmitPlan(plan) => {
                    let class = if plan.multisite {
                        TxnClass::Multisite
                    } else {
                        TxnClass::Local
                    };
                    islands_obs::set_txn_class(class);
                    let started = Instant::now();
                    let _span = exec
                        .is_none()
                        .then(|| islands_obs::enter(BreakdownCategory::XctManagement));
                    let outcome: Result<SubmitOutcome, String> = match (backend, exec) {
                        (Backend::Cluster(cluster), _) => {
                            // The in-process cluster range-partitions only
                            // the micro table; TPC-C plans belong on
                            // partition/executor instances.
                            if plan.steps.iter().all(|s| s.table == MICRO_TABLE) {
                                cluster
                                    .submit_plan(&plan_from_request(plan), config.retry_limit)
                                    .map_err(|e| e.to_string())
                            } else {
                                Err("cluster backend serves only micro-table plans".into())
                            }
                        }
                        (Backend::Partition(engine), _) => engine
                            .submit_plan_local(plan, config.retry_limit)
                            .map_err(|e| e.to_string()),
                        (Backend::Executor(_), Some(s)) => {
                            s.submit_plan(plan).map_err(|e| e.to_string())
                        }
                        (Backend::Executor(_), None) => {
                            unreachable!("executor backend always has a session")
                        }
                    };
                    encode_submit_outcome(outcome, started, counters, &mut out);
                    islands_obs::metrics().record_txn(class, started.elapsed().as_nanos() as u64);
                }
                Request::PreparePlan(branch) => {
                    counters.prepares.fetch_add(1, Ordering::Relaxed);
                    islands_obs::set_txn_class(TxnClass::Multisite);
                    let started = Instant::now();
                    let _span = exec
                        .is_none()
                        .then(|| islands_obs::enter(BreakdownCategory::XctManagement));
                    let reply = match exec {
                        Some(s) => handle_prepare_plan_exec(s, branch, counters),
                        None => handle_prepare_plan(backend, branch, in_doubt, counters),
                    };
                    islands_obs::metrics().record_prepare(started.elapsed().as_nanos() as u64);
                    if matches!(reply, Reply::Error { .. }) {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    reply.encode_frame(&mut out);
                }
                Request::ResolveGtid { gtid } => {
                    // Outcome resolution is the coordinator's job (it owns
                    // the decision log); an instance server has no authority
                    // to answer, and presuming abort here would let a
                    // misdirected query contradict a forced commit.
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                    Reply::Error {
                        message: format!(
                            "gtid {gtid} resolution is answered by the coordinator, \
                             not an instance server"
                        ),
                    }
                    .encode_frame(&mut out);
                }
                Request::Audit => {
                    let sum = match backend {
                        Backend::Cluster(c) => c.audit_sum().map_err(|e| e.to_string()),
                        Backend::Partition(p) => p.audit_sum().map_err(|e| e.to_string()),
                        Backend::Executor(e) => e.audit_sum().map_err(|e| e.to_string()),
                    };
                    match sum {
                        Ok(sum) => Reply::AuditSum { sum }.encode_frame(&mut out),
                        Err(message) => {
                            counters.errors.fetch_add(1, Ordering::Relaxed);
                            Reply::Error { message }.encode_frame(&mut out);
                        }
                    }
                }
            }
        }
        {
            let _wire = islands_obs::enter(BreakdownCategory::Communication);
            conn.write_all(&out)?;
            conn.flush()?;
        }
        if let Some(e) = pending_err {
            // Framing is broken past this point: report and hang up.
            out.clear();
            Reply::Error {
                message: format!("protocol error: {e}"),
            }
            .encode_frame(&mut out);
            counters.errors.fetch_add(1, Ordering::Relaxed);
            let _ = conn.write_all(&out);
            return Ok(());
        }
        if drain_after_flush {
            shutdown.store(true, Ordering::SeqCst);
            break 'conn;
        }
        if shutdown.load(Ordering::SeqCst) {
            // A drain landed elsewhere while this batch ran: the in-flight
            // work is answered, so this session exits even though its client
            // may still be sending.
            break 'conn;
        }
    }
    Ok(())
}

/// Encode the reply for a submit-style request (micro batch or multi-step
/// plan): committed/aborted with retry counts, or the typed storage error's
/// message for requests the engine can never satisfy.
fn encode_submit_outcome(
    outcome: Result<SubmitOutcome, String>,
    started: Instant,
    counters: &Counters,
    out: &mut Vec<u8>,
) {
    match outcome {
        Ok(outcome) => {
            let reply = if outcome.committed {
                counters.commits.fetch_add(1, Ordering::Relaxed);
                Reply::Committed {
                    distributed: outcome.distributed,
                    retries: outcome.retries,
                    server_micros: started.elapsed().as_micros() as u64,
                }
            } else {
                counters.aborts.fetch_add(1, Ordering::Relaxed);
                Reply::Aborted {
                    retries: outcome.retries,
                }
            };
            reply.encode_frame(out);
        }
        Err(message) => {
            counters.errors.fetch_add(1, Ordering::Relaxed);
            Reply::Error { message }.encode_frame(out);
        }
    }
}

/// 2PC phase 1: execute the branch, force the prepare record, vote. The
/// storage layer does the work; the [`Participant`] state machine enforces
/// protocol order and rides along in the in-doubt map so phase 2 can only
/// happen on a genuinely prepared branch.
fn handle_prepare(
    backend: &Backend,
    branch: &TxnBranch,
    in_doubt: &mut InDoubtBranches,
    counters: &Counters,
) -> Reply {
    let Backend::Partition(engine) = backend else {
        return Reply::Error {
            message: "2PC prepare requires a partition instance backend".into(),
        };
    };
    if in_doubt.contains_key(&branch.gtid) {
        return Reply::Error {
            message: format!(
                "gtid {} is already prepared on this connection",
                branch.gtid
            ),
        };
    }
    park_prepare_outcome(
        branch.gtid,
        engine.prepare_branch(branch.gtid, &branch.req),
        in_doubt,
        counters,
    )
}

/// 2PC phase 1 for a multi-step *plan* branch on a locked partition
/// backend: same protocol, same in-doubt map — a parked plan branch holds
/// the locks guarding its dependent reads (range scans included) until the
/// decision frame arrives on this connection.
fn handle_prepare_plan(
    backend: &Backend,
    branch: &PlanBranch,
    in_doubt: &mut InDoubtBranches,
    counters: &Counters,
) -> Reply {
    let Backend::Partition(engine) = backend else {
        return Reply::Error {
            message: "2PC prepare requires a partition instance backend".into(),
        };
    };
    if in_doubt.contains_key(&branch.gtid) {
        return Reply::Error {
            message: format!(
                "gtid {} is already prepared on this connection",
                branch.gtid
            ),
        };
    }
    park_prepare_outcome(
        branch.gtid,
        engine.prepare_plan_branch(branch.gtid, &branch.plan),
        in_doubt,
        counters,
    )
}

/// Shared phase-1 tail for micro and plan branches: map the engine's branch
/// outcome to a vote, parking Yes-voters (with their [`Participant`] state
/// machine) in the session's in-doubt map.
fn park_prepare_outcome(
    gtid: u64,
    outcome: Result<BranchOutcome, StorageError>,
    in_doubt: &mut InDoubtBranches,
    counters: &Counters,
) -> Reply {
    let mut participant = Participant::new(gtid);
    match outcome {
        Ok(BranchOutcome::Prepared(handle)) => {
            let ev = participant.on_prepare(true, true);
            debug_assert!(matches!(
                ev,
                ParticipantEvent::ForcePrepareAndVote {
                    vote: Vote::Yes,
                    ..
                }
            ));
            in_doubt.insert(gtid, (participant, handle));
            counters.in_doubt.fetch_add(1, Ordering::Relaxed);
            Reply::Vote {
                gtid,
                vote: Vote::Yes,
            }
        }
        Ok(BranchOutcome::ReadOnly) => {
            let ev = participant.on_prepare(false, true);
            debug_assert!(matches!(
                ev,
                ParticipantEvent::SendVote {
                    vote: Vote::ReadOnly,
                    ..
                }
            ));
            Reply::Vote {
                gtid,
                vote: Vote::ReadOnly,
            }
        }
        Ok(BranchOutcome::No) => {
            let ev = participant.on_prepare(true, false);
            debug_assert!(matches!(
                ev,
                ParticipantEvent::SendVote { vote: Vote::No, .. }
            ));
            Reply::Vote {
                gtid,
                vote: Vote::No,
            }
        }
        // Misrouted branch (key outside this partition): the coordinator
        // has a routing bug; answer with the typed error instead of a vote.
        Err(e) => Reply::Error {
            message: e.to_string(),
        },
    }
}

/// 2PC phase 2: apply the coordinator's decision to the in-doubt branch.
/// Abort decisions for unknown gtids are acknowledged — under presumed
/// abort the branch may already have been rolled back (or never prepared
/// here at all), and aborting nothing is the decreed outcome.
fn handle_decision(
    backend: &Backend,
    gtid: u64,
    commit: bool,
    in_doubt: &mut InDoubtBranches,
    counters: &Counters,
) -> Reply {
    if !matches!(backend, Backend::Partition(_)) {
        return Reply::Error {
            message: "2PC decision requires a partition instance backend".into(),
        };
    }
    match in_doubt.remove(&gtid) {
        Some((mut participant, handle)) => {
            counters.in_doubt.fetch_sub(1, Ordering::Relaxed);
            let ev = participant.on_decision(commit);
            debug_assert!(matches!(ev, ParticipantEvent::ApplyDecisionAndAck { .. }));
            match handle.decide(commit) {
                Ok(()) => {
                    if commit {
                        counters.commits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        counters.aborts.fetch_add(1, Ordering::Relaxed);
                    }
                    Reply::Ack { gtid }
                }
                Err(e) => Reply::Error {
                    message: format!("decision for gtid {gtid} failed: {e}"),
                },
            }
        }
        None if !commit => Reply::Ack { gtid },
        None => Reply::Error {
            message: format!("commit decision for unknown gtid {gtid}"),
        },
    }
}

/// 2PC phase 1 on a serial-executor backend: the branch executes and
/// prepares on the partition's executor thread; a Yes vote parks it there
/// (keyed by this session for the presumed-abort rule), so the session only
/// relays the vote and keeps the gauges.
fn handle_prepare_exec(exec: &ExecutorSession, branch: &TxnBranch, counters: &Counters) -> Reply {
    match exec.prepare(branch.gtid, &branch.req) {
        Ok(vote) => {
            if vote == Vote::Yes {
                counters.in_doubt.fetch_add(1, Ordering::Relaxed);
            }
            Reply::Vote {
                gtid: branch.gtid,
                vote,
            }
        }
        Err(e) => Reply::Error {
            message: e.to_string(),
        },
    }
}

/// 2PC phase 1 for a multi-step *plan* branch on a serial-executor backend:
/// the branch (dependent reads and all) executes and parks on the
/// partition's executor thread; the session relays the vote and keeps the
/// gauges, exactly as for micro branches.
fn handle_prepare_plan_exec(
    exec: &ExecutorSession,
    branch: &PlanBranch,
    counters: &Counters,
) -> Reply {
    match exec.prepare_plan(branch.gtid, &branch.plan) {
        Ok(vote) => {
            if vote == Vote::Yes {
                counters.in_doubt.fetch_add(1, Ordering::Relaxed);
            }
            Reply::Vote {
                gtid: branch.gtid,
                vote,
            }
        }
        Err(e) => Reply::Error {
            message: e.to_string(),
        },
    }
}

/// 2PC phase 2 on a serial-executor backend. The executor owns the in-doubt
/// branches (they are instance-global there, so a coordinator that
/// reconnected can still decide); this session applies the counter deltas.
fn handle_decision_exec(
    exec: &ExecutorSession,
    gtid: u64,
    commit: bool,
    counters: &Counters,
) -> Reply {
    match exec.decide(gtid, commit) {
        Ok(DecideOutcome::Applied) => {
            counters.in_doubt.fetch_sub(1, Ordering::Relaxed);
            if commit {
                counters.commits.fetch_add(1, Ordering::Relaxed);
            } else {
                counters.aborts.fetch_add(1, Ordering::Relaxed);
            }
            Reply::Ack { gtid }
        }
        Ok(DecideOutcome::AbortNoop) => Reply::Ack { gtid },
        Ok(DecideOutcome::UnknownCommit) => Reply::Error {
            message: format!("commit decision for unknown gtid {gtid}"),
        },
        Ok(DecideOutcome::Failed(message)) => {
            // The executor removed the branch before the decision failed
            // (mirroring the locked path, which un-maps before deciding),
            // so it is no longer in-doubt — without this decrement the
            // gauge would report a phantom leak forever.
            counters.in_doubt.fetch_sub(1, Ordering::Relaxed);
            Reply::Error {
                message: format!("decision for gtid {gtid} failed: {message}"),
            }
        }
        Err(e) => Reply::Error {
            message: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_idle_wait_spins_then_parks_capped() {
        let poll = Duration::from_millis(25);
        // Short gaps: pure yields, zero added latency.
        for streak in 0..=ACCEPT_SPIN_YIELDS {
            assert_eq!(accept_idle_wait(streak, poll), None, "streak {streak}");
        }
        // Escalation starts at 1 us and doubles...
        assert_eq!(
            accept_idle_wait(ACCEPT_SPIN_YIELDS + 1, poll),
            Some(Duration::from_micros(1))
        );
        assert_eq!(
            accept_idle_wait(ACCEPT_SPIN_YIELDS + 2, poll),
            Some(Duration::from_micros(2))
        );
        // ...and is capped sub-millisecond no matter how long the idle
        // stretch: the old fixed 5 ms nap is the regression under test.
        let mut prev = Duration::ZERO;
        for streak in ACCEPT_SPIN_YIELDS + 1..ACCEPT_SPIN_YIELDS + 10_000 {
            let park = accept_idle_wait(streak, poll).unwrap();
            assert!(park >= prev, "park regressed at streak {streak}");
            assert!(park <= ACCEPT_PARK_CAP, "park over cap at streak {streak}");
            assert!(park < Duration::from_millis(1));
            prev = park;
        }
        // A tighter poll_interval wins over the cap (shutdown notice bound).
        assert_eq!(
            accept_idle_wait(u32::MAX, Duration::from_micros(10)),
            Some(Duration::from_micros(10))
        );
    }

    #[test]
    fn session_set_stays_bounded_under_sustained_churn() {
        // Regression: handles used to be pruned only on the accept loop's
        // WouldBlock idle tick, so a server accepting connections
        // back-to-back accumulated one JoinHandle per connection forever.
        // Pushing past the watermark must prune finished handles itself.
        let mut set = SessionSet::new();
        for i in 0..1_000 {
            let h = std::thread::Builder::new()
                .spawn(|| {})
                .expect("spawn trivial session");
            // The session "finishes" before the next accept, as in
            // connect/close churn; wait so the prune sees it finished.
            while !h.is_finished() {
                std::thread::yield_now();
            }
            set.push(h);
            assert!(
                set.len() <= SESSION_PRUNE_WATERMARK + 1,
                "handle list grew to {} after {} churned sessions",
                set.len(),
                i + 1,
            );
        }
        set.join_all();
    }
}
