//! One shared-nothing instance process.
//!
//! Serves a [`PartitionEngine`](islands_core::native::PartitionEngine) over
//! the wire protocol: local submissions commit here, 2PC `Prepare`/
//! `Decision` frames drive participant-side distributed commit. Normally
//! spawned by `islands_server::deploy::Deployment` (which passes
//! `--instance-child` plus the partition/endpoint flags and reads the
//! `READY`/`STATS` lines off stdout), but it can be started by hand:
//!
//! ```sh
//! islands-instance --instance-child \
//!     --endpoint uds:/tmp/inst0.sock --lo 0 --hi 10000 --row-size 64
//! ```

use std::process::ExitCode;

use islands_server::deploy::{instance_child_main, INSTANCE_CHILD_FLAG};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Tolerate the flag's absence when invoked directly: the orchestrator
    // always passes it (one arg parser for self-exec and dedicated-binary
    // spawns), a human needn't bother.
    if args.first().map(String::as_str) == Some(INSTANCE_CHILD_FLAG) {
        args.remove(0);
    }
    ExitCode::from(instance_child_main(args) as u8)
}
