//! The island advisor: simulate every hardware-aligned island configuration
//! for a workload profile and recommend a deployment (the paper's stated
//! future work, Section 8).
//!
//! Run with: `cargo run --release --example islands_advisor`

use oltp_islands::core::advisor::{recommend, WorkloadProfile};
use oltp_islands::hwtopo::Machine;
use oltp_islands::workload::OpKind;

fn main() {
    let machine = Machine::quad_socket();
    let profile = WorkloadProfile {
        kind: OpKind::Read,
        rows_per_txn: 10,
        multisite_pct: 0.05,
        multisite_band: 0.25, // could drift up to 30% multisite
        skew: 0.0,
        skew_band: 0.5, // could develop moderate skew
        total_rows: 240_000,
    };
    println!(
        "advising for {}: {} {} rows/txn, {}% multisite (+{}%), skew {} (+{})",
        machine.name,
        profile.kind.label(),
        profile.rows_per_txn,
        profile.multisite_pct * 100.0,
        profile.multisite_band * 100.0,
        profile.skew,
        profile.skew_band
    );
    let rec = recommend(&machine, &profile, 8);
    println!(
        "\n{:>8} {:>14} {:>12} {:>10}",
        "config", "expected KTps", "worst KTps", "score"
    );
    for c in &rec.candidates {
        let marker = if c.label == rec.best.label {
            "  <== recommended"
        } else {
            ""
        };
        println!(
            "{:>8} {:>14.1} {:>12.1} {:>10.1}{marker}",
            c.label, c.expected_ktps, c.worst_ktps, c.score
        );
    }
    println!(
        "\nThe advisor weighs the expected operating point against the pessimistic\nend of the profile band — the paper's robustness argument for islands."
    );
}
