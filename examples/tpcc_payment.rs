//! TPC-C-lite Payment on the native engine: shared-everything vs
//! fine-grained shared-nothing on real threads (functional demonstration of
//! the paper's Figure 7 setup; the calibrated NUMA shapes live in the
//! simulated benches).
//!
//! Run with: `cargo run --release --example tpcc_payment`

use std::sync::Arc;
use std::time::Duration;

use oltp_islands::core::native::{NativeCluster, NativeClusterConfig};
use oltp_islands::core::plan::{OpType, PlanOp, TxnPlan, MICRO_TABLE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Payment-shaped plan over the micro table: one hot "warehouse" row, one
/// "district" row, one "customer" row (all updates).
fn payment_plan(
    rng: &mut SmallRng,
    warehouses: u64,
    rows: u64,
    home: u64,
    remote_pct: f64,
) -> TxnPlan {
    let w_row = home; // warehouse rows live at keys 0..warehouses
    let d_row = warehouses + home * 10 + rng.gen_range(0..10u64);
    let c_w = if rng.gen_bool(remote_pct) {
        (home + 1 + rng.gen_range(0..warehouses - 1)) % warehouses
    } else {
        home
    };
    let c_row = warehouses * 11
        + (c_w * (rows - warehouses * 11) / warehouses)
        + rng.gen_range(0..(rows - warehouses * 11) / warehouses);
    TxnPlan {
        ops: vec![
            PlanOp {
                table: MICRO_TABLE,
                key: w_row,
                op: OpType::Update,
            },
            PlanOp {
                table: MICRO_TABLE,
                key: d_row,
                op: OpType::Update,
            },
            PlanOp {
                table: MICRO_TABLE,
                key: c_row,
                op: OpType::Update,
            },
        ],
    }
}

fn main() {
    let rows = 44_000u64;
    let warehouses = 4u64;
    for (label, n_instances, workers) in
        [("shared-everything", 1usize, 4usize), ("4 islands", 4, 1)]
    {
        let cluster = Arc::new(
            NativeCluster::build_micro(&NativeClusterConfig {
                n_instances,
                total_rows: rows,
                row_size: 64,
                workers_per_instance: workers,
                ..Default::default()
            })
            .unwrap(),
        );
        let r = cluster.run_closed_loop(4, Duration::from_millis(600), move |t, seq| {
            let mut rng = SmallRng::seed_from_u64((t as u64) << 32 | seq);
            // Each worker is a terminal homed at one warehouse.
            payment_plan(&mut rng, warehouses, rows, t as u64 % warehouses, 0.15)
        });
        println!(
            "{label:>18}: {:>8.0} tps ({} commits, {} distributed, {} aborts)",
            r.tps(),
            r.commits,
            r.distributed,
            r.aborts
        );
        assert_eq!(cluster.audit_sum().unwrap(), r.commits * 3);
    }
    println!("\n(3 updates per committed payment verified by audit on both deployments)");
}
