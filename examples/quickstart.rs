//! Quickstart: build a native shared-nothing deployment, run local and
//! distributed transactions, then a short closed-loop burst.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use oltp_islands::core::native::{NativeCluster, NativeClusterConfig};
use oltp_islands::core::plan::{OpType, PlanOp, TxnPlan, MICRO_TABLE};

fn main() {
    // 4 instances, 40k rows, 2 workers each (locking enabled).
    let cfg = NativeClusterConfig {
        n_instances: 4,
        total_rows: 40_000,
        row_size: 64,
        workers_per_instance: 2,
        ..Default::default()
    };
    let cluster = Arc::new(NativeCluster::build_micro(&cfg).unwrap());
    println!(
        "built {} instances over {} rows",
        cluster.n_instances(),
        cfg.total_rows
    );

    // A local transaction (all keys in instance 0).
    let local = TxnPlan {
        ops: (0..4)
            .map(|k| PlanOp {
                table: MICRO_TABLE,
                key: k,
                op: OpType::Update,
            })
            .collect(),
    };
    let was_2pc = cluster.execute(&local).unwrap();
    println!("local txn committed (2pc = {was_2pc})");

    // A distributed transaction (keys span instances -> 2PC).
    let distributed = TxnPlan {
        ops: vec![
            PlanOp {
                table: MICRO_TABLE,
                key: 5,
                op: OpType::Update,
            },
            PlanOp {
                table: MICRO_TABLE,
                key: 35_000,
                op: OpType::Update,
            },
        ],
    };
    let was_2pc = cluster.execute(&distributed).unwrap();
    println!("cross-instance txn committed (2pc = {was_2pc})");

    // Closed-loop workers for half a second.
    let total_rows = cfg.total_rows;
    let result = cluster.run_closed_loop(4, Duration::from_millis(500), move |t, seq| {
        let a = (t as u64 * 977 + seq * 13) % total_rows;
        let b = (a + 911) % total_rows;
        TxnPlan {
            ops: vec![
                PlanOp {
                    table: MICRO_TABLE,
                    key: a,
                    op: OpType::Update,
                },
                PlanOp {
                    table: MICRO_TABLE,
                    key: b,
                    op: OpType::Update,
                },
            ],
        }
    });
    println!(
        "closed loop: {} commits ({} distributed, {} aborts) -> {:.0} tps",
        result.commits,
        result.distributed,
        result.aborts,
        result.tps()
    );
    // Exactly-once accounting: the 4-op local txn, the 2-op distributed txn,
    // then 2 rows per closed-loop commit.
    let sum = cluster.audit_sum().unwrap();
    assert_eq!(sum, result.commits * 2 + 6);
    println!(
        "audit: {} row updates applied = 4 + 2 + 2 x {} committed txns  OK",
        sum, result.commits
    );
}
