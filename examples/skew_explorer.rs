//! Explore how skew reshapes the deployment trade-off (paper Section 7.3):
//! sweep the Zipf skew factor on the simulated quad-socket machine and
//! watch fine-grained shared-nothing collapse while islands degrade
//! gracefully.
//!
//! Run with: `cargo run --release --example skew_explorer`

use oltp_islands::core::simrt::{run, SimClusterConfig, SimWorkload};
use oltp_islands::hwtopo::Machine;
use oltp_islands::workload::{MicroSpec, OpKind};

fn main() {
    println!("update 2 rows, 20% multisite, quad-socket (KTps)\n");
    print!("{:>8}", "skew");
    for n in [24, 4, 1] {
        print!(" {:>9}", format!("{n}ISL"));
    }
    println!();
    for s in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        print!("{s:>8.2}");
        for n in [24usize, 4, 1] {
            let spec = MicroSpec::new(OpKind::Update, 2, 0.2).with_skew(s);
            let mut cfg = SimClusterConfig::new(Machine::quad_socket(), n);
            cfg.warmup_ms = 2;
            cfg.measure_ms = 8;
            let r = run(&cfg, &SimWorkload::Micro(spec));
            print!(" {:>9.1}", r.ktps());
        }
        println!();
    }
    println!("\n24ISL: the hot instance's single worker becomes the bottleneck.");
    println!("4ISL:  the hot island spreads the load over its six workers.");
    println!("1ISL:  immune to placement skew but pays contention on hot rows.");
}
