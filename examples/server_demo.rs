//! Server demo: a socket-served shared-nothing deployment end to end.
//!
//! Spawns a 4-instance `NativeCluster` behind a Unix-domain-socket server,
//! connects a client, runs local and distributed transactions plus a
//! pipelined batch, prints the typed replies, then drains the server and
//! verifies the audit invariant.
//!
//! Run with: `cargo run --release --example server_demo`

use std::sync::Arc;

use oltp_islands::core::native::{NativeCluster, NativeClusterConfig};
use oltp_islands::server::{Client, Endpoint, Reply, Server, ServerConfig};
use oltp_islands::workload::{OpKind, TxnRequest};

fn update(keys: &[u64]) -> TxnRequest {
    TxnRequest {
        kind: OpKind::Update,
        keys: keys.to_vec(),
        multisite: keys.len() > 1,
    }
}

fn main() {
    // The deployment: 4 shared-nothing instances over 40k rows, exactly the
    // in-process quickstart cluster...
    let cfg = NativeClusterConfig {
        n_instances: 4,
        total_rows: 40_000,
        row_size: 64,
        workers_per_instance: 2,
        ..Default::default()
    };
    let cluster = Arc::new(NativeCluster::build_micro(&cfg).unwrap());

    // ...but served over a Unix domain socket, the paper's IPC of choice.
    let mut sock = std::env::temp_dir();
    sock.push(format!("islands-demo-{}.sock", std::process::id()));
    let handle = Server::spawn(
        Arc::clone(&cluster),
        Endpoint::Uds(sock),
        ServerConfig::default(),
    )
    .unwrap();
    println!("serving 4 instances at {}", handle.endpoint());

    let mut client = Client::connect(handle.endpoint()).unwrap();
    println!("ping: {:?}", client.ping().unwrap());

    // Local transaction: all keys in instance 0, no 2PC.
    match client.submit(&update(&[1, 2, 3, 4])).unwrap() {
        Reply::Committed {
            distributed,
            server_micros,
            ..
        } => println!("local txn committed (2pc = {distributed}, {server_micros}us server-side)"),
        other => panic!("unexpected reply {other:?}"),
    }

    // Distributed transaction: keys span instances 0 and 3 -> 2PC over the
    // same socket round trip.
    match client.submit(&update(&[5, 35_000])).unwrap() {
        Reply::Committed {
            distributed,
            server_micros,
            ..
        } => println!(
            "cross-instance txn committed (2pc = {distributed}, {server_micros}us server-side)"
        ),
        other => panic!("unexpected reply {other:?}"),
    }

    // A malformed request gets a typed error, not a dead connection.
    match client.submit(&update(&[999_999_999])).unwrap() {
        Reply::Error { message } => println!("rejected as expected: {message}"),
        other => panic!("unexpected reply {other:?}"),
    }

    // Pipelining: 32 transactions in one write; the server executes them as
    // a batch and flushes all replies at once (its group-commit window).
    let batch: Vec<TxnRequest> = (0..32).map(|i| update(&[i * 1_000])).collect();
    let replies = client.submit_pipelined(&batch).unwrap();
    let committed = replies
        .iter()
        .filter(|r| matches!(r, Reply::Committed { .. }))
        .count();
    println!("pipelined batch: {committed}/32 committed in one round trip");

    // Drain: server stops accepting, finishes in-flight work, exits.
    client.drain_server().unwrap();
    let stats = handle.join().unwrap();
    println!(
        "drained cleanly: {} requests, {} commits, {} errors over {} connections",
        stats.requests, stats.commits, stats.errors, stats.connections
    );

    // Exactly-once accounting across the socket: 4 + 2 + 32 row updates.
    let sum = cluster.audit_sum().unwrap();
    assert_eq!(sum, 38);
    println!("audit: {sum} row updates applied  OK");
}
