//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `bytes` 1.x this workspace uses: the [`Buf`]
//! trait for `&[u8]` cursors and the [`BufMut`] trait for `Vec<u8>` sinks,
//! with little-endian fixed-width accessors. Panics on underflow, matching
//! the real crate's contract.

/// Read-side byte cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// If `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Copy `dst.len()` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write-side byte sink.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");

        let mut b: &[u8] = &out;
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.remaining(), 3);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b: &[u8] = &[1, 2];
        b.advance(3);
    }
}
