//! Test configuration and the per-case RNG.

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case RNG (SplitMix64 seeded from the test name and case
/// index) so failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: seed ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
