//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: `sample` is the only required method, so strategies can be
/// boxed (`Box<dyn Strategy<Value = T>>`) for [`Union`] / `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Box this strategy (stand-in for `BoxedStrategy`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
