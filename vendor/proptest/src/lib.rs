//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest 1.x API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop_map`, [`prop_oneof!`], `prop::collection::vec`, and the
//! `prop_assert!` family.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed per case index (reproducible across runs), and there is
//! **no shrinking** — a failing case panics with the generated inputs
//! visible in the assertion message via `Debug` formatting of the arguments.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::ProptestConfig;

use std::marker::PhantomData;

use test_runner::TestRng;

/// Strategy producing arbitrary values of `T` (stand-in for
/// `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy type returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a whole-domain arbitrary distribution.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite f64s only (keeps arithmetic-heavy properties meaningful).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mantissa = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let scale = (rng.next_u64() % 61) as i32 - 30; // 2^-30 ..= 2^30
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mantissa * (scale as f64).exp2()
    }
}

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`, ...),
    /// as exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests. Each `arg in strategy` argument is sampled per
/// case; the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Assert within a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..=4, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u16>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn map_and_oneof_compose(
            v in prop_oneof![
                (any::<u8>(), any::<u8>()).prop_map(|(a, b)| a as u32 + b as u32),
                (100u32..200).prop_map(|x| x * 2),
            ]
        ) {
            prop_assert!(v < 600);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 5);
        let mut b = crate::test_runner::TestRng::for_case("t", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
