//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate reimplements the subset of the `parking_lot` 0.12 API this workspace
//! uses on top of `std::sync`. Semantics match parking_lot where it matters:
//! locks do not poison (a panic while holding a lock simply releases it), and
//! guards are `Deref`/`DerefMut` smart pointers.
//!
//! Provided:
//!
//! * [`Mutex`] / [`MutexGuard`] — non-poisoning mutex.
//! * [`Condvar`] with [`Condvar::wait_for`] returning a [`WaitTimeoutResult`].
//! * [`RwLock`] / [`RwLockReadGuard`] / [`RwLockWriteGuard`] — non-poisoning
//!   reader-writer lock.
//! * `RwLock::read_arc` / `RwLock::write_arc` and the
//!   [`lock_api::ArcRwLockReadGuard`] / [`lock_api::ArcRwLockWriteGuard`]
//!   owned-guard types (the `arc_lock` feature surface of the real crate).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

/// Marker type standing in for `parking_lot::RawRwLock`; only used as the `R`
/// type parameter of the `lock_api` guard aliases.
pub struct RawRwLock {
    _priv: (),
}

/// Marker type standing in for `parking_lot::RawMutex`.
pub struct RawMutex {
    _priv: (),
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A non-poisoning mutual-exclusion lock (API subset of `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait_for`]
/// can temporarily take the underlying std guard; it is `Some` at all times
/// outside that method.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified. Spurious wakeups are possible, as with any
    /// condition variable.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard poisoned by earlier panic");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses; the guard is reacquired in
    /// either case.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard poisoned by earlier panic");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Lock for reading through an `Arc`, returning an owned guard that keeps
    /// the lock alive (the real crate's `arc_lock` API).
    pub fn read_arc(self: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        lock_api::ArcRwLockReadGuard::new(Arc::clone(self))
    }

    /// Lock for writing through an `Arc`, returning an owned guard.
    pub fn write_arc(self: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        lock_api::ArcRwLockWriteGuard::new(Arc::clone(self))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// lock_api guard types
// ---------------------------------------------------------------------------

pub mod lock_api {
    //! Owned (`Arc`-holding) guard types mirroring `lock_api`'s `arc_lock`
    //! surface. The `R` type parameter is a phantom matching the real crate's
    //! raw-lock parameter; only `crate::RawRwLock` is ever used for it.

    use std::marker::PhantomData;
    use std::mem::ManuallyDrop;
    use std::ops::{Deref, DerefMut};
    use std::sync::{Arc, PoisonError};

    use crate::RwLock;

    /// An RAII read guard that owns an `Arc` to its `RwLock`.
    ///
    /// Safety argument for the internal `'static` extension: the guard
    /// borrows out of the `std::sync::RwLock` inside `self.lock`, an `Arc`
    /// held by this same struct, whose pointee never moves. The std guard is
    /// dropped (in `Drop::drop`) strictly before the `Arc` is released.
    pub struct ArcRwLockReadGuard<R, T: 'static> {
        guard: ManuallyDrop<std::sync::RwLockReadGuard<'static, T>>,
        lock: Arc<RwLock<T>>,
        _raw: PhantomData<R>,
    }

    /// An RAII write guard that owns an `Arc` to its `RwLock`.
    pub struct ArcRwLockWriteGuard<R, T: 'static> {
        guard: ManuallyDrop<std::sync::RwLockWriteGuard<'static, T>>,
        lock: Arc<RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T> ArcRwLockReadGuard<R, T> {
        pub(crate) fn new(lock: Arc<RwLock<T>>) -> Self {
            // Borrow through a raw pointer so the resulting guard's lifetime
            // is unbound, then pin it to 'static; see the struct-level safety
            // argument.
            let inner: *const std::sync::RwLock<T> = &lock.inner;
            let guard = unsafe { &*inner }
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            ArcRwLockReadGuard {
                guard: ManuallyDrop::new(guard),
                lock,
                _raw: PhantomData,
            }
        }

        /// The lock this guard came from.
        pub fn rwlock(this: &Self) -> &Arc<RwLock<T>> {
            &this.lock
        }
    }

    impl<R, T> ArcRwLockWriteGuard<R, T> {
        pub(crate) fn new(lock: Arc<RwLock<T>>) -> Self {
            let inner: *const std::sync::RwLock<T> = &lock.inner;
            let guard = unsafe { &*inner }
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            ArcRwLockWriteGuard {
                guard: ManuallyDrop::new(guard),
                lock,
                _raw: PhantomData,
            }
        }

        pub fn rwlock(this: &Self) -> &Arc<RwLock<T>> {
            &this.lock
        }
    }

    impl<R, T> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<R, T> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<R, T> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.guard
        }
    }

    impl<R, T> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            // Release the lock before the owning Arc can go away.
            unsafe { ManuallyDrop::drop(&mut self.guard) };
        }
    }

    impl<R, T> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            unsafe { ManuallyDrop::drop(&mut self.guard) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Mutex::new(0u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);

        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert_eq!(*g, 1);
    }

    #[test]
    fn rwlock_arc_guards_hold_lock_alive() {
        let l = Arc::new(RwLock::new(7u64));
        let r1 = l.read_arc();
        let r2 = l.read_arc();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        let mut w = l.write_arc();
        *w = 9;
        drop(w);
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn guard_survives_lock_handle_drop() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let g = l.read_arc();
        drop(l); // guard still owns an Arc
        assert_eq!(g.len(), 3);
    }
}
