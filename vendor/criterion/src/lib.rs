//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `bench_function` / `criterion_group!` / `criterion_main!`
//! surface used by this workspace's `components` bench. Measurement is a
//! straightforward walltime sampler: warm up for `warm_up_time`, then take
//! `sample_size` samples whose batch size is tuned so the whole run fits in
//! roughly `measurement_time`; mean and standard deviation are printed in
//! plain text. No plotting, no statistics beyond mean/σ, no comparison with
//! previous runs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            sample_size: 100,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run `f` as a named benchmark and print its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: self.warm_up_time,
                iters: 0,
            },
        };
        f(&mut b);
        let iters_per_sec = match b.mode {
            Mode::WarmUp { iters, .. } => iters.max(1),
            _ => 1,
        };

        // Size each sample so that sample_size samples fill measurement_time.
        let total_iters =
            (iters_per_sec as f64 * self.measurement_time.as_secs_f64()).max(1.0) as u64;
        let per_sample = (total_iters / self.sample_size as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                mode: Mode::Measure {
                    iters: per_sample,
                    elapsed: Duration::ZERO,
                },
            };
            f(&mut b);
            if let Mode::Measure { elapsed, .. } = b.mode {
                samples_ns.push(elapsed.as_nanos() as f64 / per_sample as f64);
            }
        }

        let n = samples_ns.len() as f64;
        let mean = samples_ns.iter().sum::<f64>() / n;
        let var = samples_ns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / (n - 1.0);
        let sd = var.sqrt();
        println!("{id:<40} time: [{} ± {}]", fmt_ns(mean), fmt_ns(sd));
        self
    }
}

enum Mode {
    /// Run for a wall-clock duration, counting iterations to calibrate.
    WarmUp { until: Duration, iters: u64 },
    /// Run a fixed iteration count, accumulating elapsed time.
    Measure { iters: u64, elapsed: Duration },
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Time `routine`, discarding its output via a black box.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            Mode::WarmUp { until, iters } => {
                let deadline = Instant::now() + *until;
                // Normalize warm-up iteration count to iters/second.
                let start = Instant::now();
                let mut n = 0u64;
                while Instant::now() < deadline {
                    std_black_box(routine());
                    n += 1;
                }
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                *iters = (n as f64 / secs).max(1.0) as u64;
            }
            Mode::Measure { iters, elapsed } => {
                let start = Instant::now();
                for _ in 0..*iters {
                    std_black_box(routine());
                }
                *elapsed += start.elapsed();
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declare a group of benchmark functions (criterion-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(2);
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
