//! Sequence-related helpers (`rand::seq` subset).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Shuffle in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}
