//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so this vendored crate
//! provides the slice of `rand` 0.8 the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` (half-open and inclusive
//!   integer and float ranges), and `gen_bool`.
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`.
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm family the real
//!   `small_rng` feature uses; deterministic for a given seed.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Statistical quality is adequate for simulation workloads; this is not a
//! cryptographic RNG.

pub mod rngs;
pub mod seq;

pub use rngs::SmallRng;

/// Core of every random number generator: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (mirroring rand 0.8).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over their whole range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable generator (rand 0.8 subset).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64, as rand does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the standard distribution (stand-in for
/// `Standard: Distribution<T>`).
pub trait Standard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a single uniform value can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width computed in u64 so signed ranges can span zero.
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.next_u64() % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
