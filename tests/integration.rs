//! Cross-crate integration tests: the native engine, the simulated engine,
//! and the protocol invariants that tie them together.

use std::sync::Arc;
use std::time::Duration;

use oltp_islands::core::native::{NativeCluster, NativeClusterConfig};
use oltp_islands::core::plan::{OpType, PlanOp, TxnPlan, MICRO_TABLE};
use oltp_islands::core::simrt::{run_with_audit, SimClusterConfig, SimWorkload};
use oltp_islands::hwtopo::Machine;
use oltp_islands::storage::store::MemStore;
use oltp_islands::storage::wal::MemLogDevice;
use oltp_islands::storage::{InstanceOptions, StorageInstance};
use oltp_islands::workload::{MicroSpec, OpKind};

fn upd(keys: &[u64]) -> TxnPlan {
    TxnPlan {
        ops: keys
            .iter()
            .map(|&key| PlanOp {
                table: MICRO_TABLE,
                key,
                op: OpType::Update,
            })
            .collect(),
    }
}

#[test]
fn native_2pc_is_atomic_across_instances() {
    let cluster = NativeCluster::build_micro(&NativeClusterConfig {
        n_instances: 8,
        total_rows: 8_000,
        row_size: 16,
        workers_per_instance: 2,
        ..Default::default()
    })
    .unwrap();
    // Touch all 8 instances in one transaction.
    let keys: Vec<u64> = (0..8).map(|i| i * 1_000 + 5).collect();
    assert!(cluster.execute(&upd(&keys)).unwrap());
    assert_eq!(cluster.audit_sum().unwrap(), 8, "all-or-nothing");
}

#[test]
fn native_concurrent_mixed_load_conserves_updates() {
    let cfg = NativeClusterConfig {
        n_instances: 4,
        total_rows: 2_000,
        row_size: 16,
        workers_per_instance: 2,
        ..Default::default()
    };
    let rows = cfg.total_rows;
    let cluster = Arc::new(NativeCluster::build_micro(&cfg).unwrap());
    let r = cluster.run_closed_loop(6, Duration::from_millis(400), move |t, seq| {
        let a = (t as u64 * 37 + seq * 11) % rows;
        let b = (a + 501) % rows;
        let c = (a + 1_003) % rows;
        upd(&[a, b, c])
    });
    assert!(r.commits > 0);
    assert!(r.distributed > 0);
    assert_eq!(cluster.audit_sum().unwrap(), r.commits * 3);
}

#[test]
fn recovery_across_checkpoint_and_2pc() {
    // Build an instance, prepare a txn, "crash", recover, resolve in doubt.
    let store: Arc<dyn oltp_islands::storage::store::PageStore> = Arc::new(MemStore::new());
    let dev = MemLogDevice::new();
    {
        let inst = StorageInstance::create(
            Arc::clone(&store),
            dev.clone(),
            InstanceOptions {
                buffer_frames: 256,
                ..Default::default()
            },
        );
        let t = inst.create_table("t", 16).unwrap();
        for k in 0..50u64 {
            inst.load_row(&t, k, &[0u8; 16]).unwrap();
        }
        inst.checkpoint().unwrap();
        // One committed txn, one in-doubt prepared txn.
        let mut a = inst.begin();
        a.update("t", 1, &[1u8; 16]).unwrap();
        a.commit().unwrap();
        let mut b = inst.begin();
        b.update("t", 2, &[2u8; 16]).unwrap();
        b.prepare(42).unwrap();
        std::mem::forget(b); // crash while prepared
    }
    let (inst, in_doubt) = StorageInstance::recover(
        store,
        dev,
        InstanceOptions {
            buffer_frames: 256,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(in_doubt.len(), 1);
    // Coordinator decision arrives: commit.
    inst.resolve_in_doubt(&in_doubt[0], true).unwrap();
    let mut txn = inst.begin();
    assert_eq!(txn.read("t", 1).unwrap(), Some(vec![1u8; 16]));
    assert_eq!(txn.read("t", 2).unwrap(), Some(vec![2u8; 16]));
    txn.commit().unwrap();
}

#[test]
fn sim_exactly_once_under_multisite_and_skew() {
    for (n, pct, skew) in [(24usize, 0.5, 0.0), (4, 0.2, 0.9), (1, 0.0, 0.99)] {
        let spec = MicroSpec::new(OpKind::Update, 3, pct).with_skew(skew);
        let mut cfg = SimClusterConfig::new(Machine::quad_socket(), n);
        cfg.warmup_ms = 2;
        cfg.measure_ms = 6;
        let (r, audit) = run_with_audit(&cfg, &SimWorkload::Micro(spec));
        assert!(
            r.commits > 50,
            "{n}ISL pct={pct} skew={skew}: {}",
            r.commits
        );
        assert_eq!(
            audit.applied_row_updates, audit.committed_row_writes,
            "{n}ISL pct={pct} skew={skew}"
        );
    }
}

#[test]
fn sim_is_deterministic_for_a_seed() {
    let mk = || {
        let mut cfg = SimClusterConfig::new(Machine::quad_socket(), 4);
        cfg.warmup_ms = 1;
        cfg.measure_ms = 4;
        cfg.seed = 1234;
        run_with_audit(
            &cfg,
            &SimWorkload::Micro(MicroSpec::new(OpKind::Update, 4, 0.3)),
        )
        .0
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.aborts, b.aborts);
    assert_eq!(a.distributed, b.distributed);
    assert_eq!(a.breakdown.total_ps(), b.breakdown.total_ps());
}

#[test]
fn headline_results_hold() {
    // Paper headline 1: perfectly partitionable workloads favor
    // fine-grained shared-nothing over shared-everything.
    let mk = |n: usize, wl: &SimWorkload| {
        let mut cfg = SimClusterConfig::new(Machine::quad_socket(), n);
        cfg.warmup_ms = 2;
        cfg.measure_ms = 8;
        run_with_audit(&cfg, wl).0.ktps()
    };
    let local_read = SimWorkload::Micro(MicroSpec::new(OpKind::Read, 10, 0.0));
    let fg = mk(24, &local_read);
    let se = mk(1, &local_read);
    assert!(
        fg > se * 1.5,
        "FG {fg:.0} must beat SE {se:.0} on local reads"
    );

    // Paper headline 2: at 100% multisite, shared-everything wins.
    let all_multi = SimWorkload::Micro(MicroSpec::new(OpKind::Read, 10, 1.0));
    let fg = mk(24, &all_multi);
    let se = mk(1, &all_multi);
    assert!(
        se > fg * 1.5,
        "SE {se:.0} must beat FG {fg:.0} at 100% multisite"
    );

    // Paper headline 3: under heavy skew, islands degrade more gracefully
    // than fine-grained shared-nothing.
    let skewed = SimWorkload::Micro(MicroSpec::new(OpKind::Update, 2, 0.2).with_skew(1.0));
    let fg = mk(24, &skewed);
    let cg = mk(4, &skewed);
    assert!(
        cg > fg * 2.0,
        "CG {cg:.0} must beat FG {fg:.0} under heavy skew"
    );
}

#[test]
fn native_single_threaded_fine_grained_optimization() {
    // One worker per instance disables locking entirely; throughput path
    // still correct.
    let cluster = NativeCluster::build_micro(&NativeClusterConfig {
        n_instances: 2,
        total_rows: 200,
        row_size: 16,
        workers_per_instance: 1,
        ..Default::default()
    })
    .unwrap();
    for k in 0..10 {
        cluster.execute(&upd(&[k])).unwrap();
    }
    let (acquires, _, _) = cluster.instance(0).locks().stats();
    assert_eq!(
        acquires, 0,
        "single-threaded instances skip the lock manager"
    );
    assert_eq!(cluster.audit_sum().unwrap(), 10);
}
