//! Wire-level 2PC through the root facade: spawn a real multi-process
//! deployment (`SpawnMode::SelfExec` — this test binary re-executes itself
//! as the instance children) and drive one distributed commit, one local
//! commit, and a distributed read-only transaction end to end.
//!
//! This is a `harness = false` test with a hand-written `main` because the
//! instance children are *this binary* run with `--instance-child`: the
//! standard libtest harness would try to parse that flag. Tier-1 CI runs
//! this via the root `cargo test`, closing the old blind spot where the
//! facade build was never exercised against a live deployment.

use std::sync::Arc;
use std::time::Duration;

use oltp_islands::server::deploy::{
    run_instance_child_if_requested, DeployConfig, DeployReply, Deployment, SpawnMode, Transport,
};
use oltp_islands::workload::{OpKind, TxnRequest};

fn update(keys: &[u64]) -> TxnRequest {
    TxnRequest {
        kind: OpKind::Update,
        keys: keys.to_vec(),
        multisite: keys.len() > 1,
    }
}

fn run() -> Result<(), String> {
    let deploy = Deployment::spawn(&DeployConfig {
        instances: 3,
        transport: Transport::Uds,
        total_rows: 300,
        row_size: 16,
        // The host may lack taskset/cores; pinning is not what we test.
        pin: false,
        spawn: SpawnMode::SelfExec,
        vote_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .map_err(|e| format!("spawn deployment: {e}"))?;
    let deploy = Arc::new(deploy);
    let mut client = deploy.client().map_err(|e| format!("connect: {e}"))?;

    let outcome = |reply: DeployReply| match reply {
        DeployReply::Outcome(o) => Ok(o),
        other => Err(format!("expected an outcome, got {other:?}")),
    };

    // Local transaction: both keys in instance 0's range [0, 100).
    let local = outcome(
        client
            .submit(&update(&[3, 42]))
            .map_err(|e| e.to_string())?,
    )?;
    if !local.committed || local.distributed {
        return Err(format!("local submit mis-handled: {local:?}"));
    }

    // Multisite update across all three instances: one wire-level 2PC
    // round (prepare/vote/decision/ack over the sockets).
    let multi = outcome(
        client
            .submit(&update(&[10, 150, 290]))
            .map_err(|e| e.to_string())?,
    )?;
    if !multi.committed || !multi.distributed {
        return Err(format!("multisite 2PC did not commit: {multi:?}"));
    }
    if deploy.decided_commits() != 1 {
        return Err(format!(
            "expected exactly one forced commit decision, saw {}",
            deploy.decided_commits()
        ));
    }

    // Distributed read-only: the read-only vote skips phase 2, so no new
    // decision is forced.
    let ro = outcome(
        client
            .submit(&TxnRequest {
                kind: OpKind::Read,
                keys: vec![20, 250],
                multisite: true,
            })
            .map_err(|e| e.to_string())?,
    )?;
    if !ro.committed || !ro.distributed {
        return Err(format!("read-only 2PC failed: {ro:?}"));
    }
    if deploy.decided_commits() != 1 {
        return Err("read-only 2PC must not force a decision".into());
    }
    if deploy.presumed_aborts() != 0 {
        return Err("clean run must observe no presumed aborts".into());
    }

    // Drain everything; every instance must exit clean with zero in-doubt.
    drop(client);
    let deploy = Arc::try_unwrap(deploy).map_err(|_| "deployment still shared".to_string())?;
    for exit in deploy.shutdown() {
        if !exit.clean {
            return Err(format!("unclean instance exit: {exit:?}"));
        }
    }
    Ok(())
}

fn main() {
    // When Deployment::spawn re-executes this binary as an instance child,
    // this call serves the instance and exits; the parent falls through.
    run_instance_child_if_requested();
    match run() {
        Ok(()) => println!("facade_2pc: ok"),
        Err(e) => {
            eprintln!("facade_2pc: FAILED: {e}");
            std::process::exit(1);
        }
    }
}
