//! The facade crate's re-exports ARE the public API: examples, docs, and
//! downstream users reach every subsystem through `oltp_islands::{core,
//! storage, sim, memsim, net, hwtopo, dtxn, workload}`. These tests pin those
//! paths so a facade refactor that breaks them fails loudly.

use oltp_islands::core::native::{NativeCluster, NativeClusterConfig};
use oltp_islands::core::plan::{OpType, PlanOp, TxnPlan, MICRO_TABLE};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Every re-exported module path used by the examples and crate docs
/// resolves and hands back a usable value.
#[test]
fn reexported_module_paths_resolve() {
    // storage: the substrate types.
    let txn = oltp_islands::storage::TxnId(7);
    assert_eq!(txn.to_string(), "txn7");
    assert_eq!(oltp_islands::storage::PAGE_SIZE, 8192);

    // hwtopo: the paper's quad-socket machine parameterizes everything.
    let machine = oltp_islands::hwtopo::Machine::quad_socket();
    assert!(machine.total_cores() > 0);

    // memsim: a cost model over that machine.
    let cm = oltp_islands::memsim::CostModel::new(machine, 1);
    let cost = cm.charge_instr(oltp_islands::hwtopo::CoreId(0), 10);
    assert!(cost > 0);

    // net: the Figure 6 IPC mechanisms.
    assert!(!oltp_islands::net::IpcMechanism::ALL.is_empty());

    // sim: the DES kernel runs (an empty run completes at time zero).
    let sim = oltp_islands::sim::Sim::new();
    sim.run();
    assert_eq!(oltp_islands::sim::PS_PER_MS, 1_000_000_000);

    // dtxn: protocol vocabulary.
    let vote = oltp_islands::dtxn::Vote::ReadOnly;
    assert_ne!(vote, oltp_islands::dtxn::Vote::No);

    // workload: the Zipf sampler stays in range through the facade path.
    let zipf = oltp_islands::workload::Zipf::new(100, 0.9);
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..50 {
        assert!(zipf.sample(&mut rng) < 100);
    }

    // core: crate-root re-exports of the deployment vocabulary.
    let plan = oltp_islands::core::TxnPlan { ops: vec![] };
    assert!(plan.is_read_only());
}

/// A one-op transaction through the facade: build a tiny native cluster,
/// commit a single local update, and read it back via the audit.
#[test]
fn native_cluster_one_op_round_trip() {
    let cluster = NativeCluster::build_micro(&NativeClusterConfig {
        n_instances: 2,
        total_rows: 200,
        row_size: 16,
        ..Default::default()
    })
    .unwrap();

    let was_2pc = cluster
        .execute(&TxnPlan {
            ops: vec![PlanOp {
                table: MICRO_TABLE,
                key: 7,
                op: OpType::Update,
            }],
        })
        .unwrap();
    assert!(!was_2pc, "single-key txn must stay local");
    assert_eq!(cluster.n_instances(), 2);
    assert_eq!(cluster.audit_sum().unwrap(), 1, "exactly one row updated");
}
