//! # oltp-islands
//!
//! A from-scratch Rust reproduction of **"OLTP on Hardware Islands"**
//! (Porobic, Pandis, Branco, Tözün, Ailamaki — PVLDB 5(11), 2012).
//!
//! Modern multisocket multicore servers are *islands* of cores: cheap
//! communication inside a socket, expensive communication across. The paper
//! studies how OLTP deployments — one shared-everything instance, many
//! fine-grained shared-nothing instances, or topology-aware *islands* in
//! between — behave on such hardware. This crate re-implements the whole
//! stack the paper needed:
//!
//! * [`storage`] — a Shore-MT-style storage manager (B+trees, heap files,
//!   buffer pool, hierarchical 2PL, ARIES-style WAL with group commit,
//!   recovery with 2PC in-doubt resolution).
//! * [`dtxn`] — presumed-abort two-phase commit state machines with the
//!   read-only optimization.
//! * [`net`] — the IPC cost models of the paper's Figure 6, plus live
//!   Unix-socket/TCP ping-pong measurement.
//! * [`hwtopo`] — machine topologies (the paper's quad- and octo-socket
//!   Xeons), calibrated communication costs, placement policies.
//! * [`sim`] / [`memsim`] — a deterministic discrete-event simulator and a
//!   NUMA memory-hierarchy cost model standing in for the paper's hardware
//!   (see DESIGN.md for the substitution argument).
//! * [`core`] — deployments: the native threaded cluster
//!   ([`core::native::NativeCluster`]) and the simulated cluster
//!   ([`core::simrt`]) that regenerates every figure, plus the island
//!   advisor ([`core::advisor`]).
//! * [`workload`] — the paper's microbenchmarks (multisite %, Zipfian
//!   skew) and TPC-C-lite Payment.
//! * [`server`] — socket-served deployments: a length-prefixed wire
//!   protocol over Unix domain sockets / TCP, a multi-threaded server with
//!   request pipelining and a group-commit batch window, and a blocking
//!   client library with a connection pool (drive it with the `loadgen`
//!   binary in `islands-bench`).
//!
//! ## Quickstart
//!
//! ```
//! use oltp_islands::core::native::{NativeCluster, NativeClusterConfig};
//! use oltp_islands::core::plan::{OpType, PlanOp, TxnPlan, MICRO_TABLE};
//!
//! // Four shared-nothing instances over 4000 rows.
//! let cluster = NativeCluster::build_micro(&NativeClusterConfig {
//!     n_instances: 4,
//!     total_rows: 4_000,
//!     row_size: 32,
//!     ..Default::default()
//! }).unwrap();
//!
//! // A cross-instance update runs two-phase commit transparently.
//! let distributed = cluster.execute(&TxnPlan {
//!     ops: vec![
//!         PlanOp { table: MICRO_TABLE, key: 10,    op: OpType::Update },
//!         PlanOp { table: MICRO_TABLE, key: 3_900, op: OpType::Update },
//!     ],
//! }).unwrap();
//! assert!(distributed);
//! assert_eq!(cluster.audit_sum().unwrap(), 2);
//! ```

pub use islands_core as core;
pub use islands_dtxn as dtxn;
pub use islands_hwtopo as hwtopo;
pub use islands_memsim as memsim;
pub use islands_net as net;
pub use islands_server as server;
pub use islands_sim as sim;
pub use islands_storage as storage;
pub use islands_workload as workload;
